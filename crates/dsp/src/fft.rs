//! Planned radix-2 fast Fourier transforms.
//!
//! The transform layer is built around [`FftPlan`]: the bit-reversal
//! permutation and per-stage twiddle tables for one size are computed once
//! (directly, via `sin`/`cos` per entry — not the error-accumulating
//! `w *= wlen` recurrence) and reused for every transform of that size.
//! [`with_plan`] hands out plans from a thread-local cache so the hot
//! paths — [`fft_padded`], [`magnitude_spectrum`], the STFT, correlation,
//! frequency-domain filtering — never rebuild tables or allocate plan
//! state per call.
//!
//! Real signals take a packed fast path: an `N`-point real transform is
//! computed as an `N/2`-point complex FFT of the even/odd-interleaved
//! samples plus an `O(N)` unpacking step, roughly halving the work of
//! every spectrum, filter and correlation in the workspace.
//!
//! Lengths must be powers of two; [`next_pow2`] and [`fft_padded`] help
//! with arbitrary input lengths.

use crate::complex::Complex;
use crate::error::DspError;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Returns the smallest power of two that is `>= n` (and at least 1).
///
/// # Example
///
/// ```
/// assert_eq!(thrubarrier_dsp::fft::next_pow2(500), 512);
/// assert_eq!(thrubarrier_dsp::fft::next_pow2(512), 512);
/// assert_eq!(thrubarrier_dsp::fft::next_pow2(0), 1);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A precomputed plan for FFTs of one power-of-two size.
///
/// Holds the bit-reversal permutation, the forward twiddle factors of
/// every butterfly stage (concatenated, `n - 1` entries total) and the
/// unpacking twiddles used when this plan serves as the half-size kernel
/// of a `2n`-point real transform. Each twiddle is evaluated directly
/// from its angle, so plans are accurate to f32 rounding even at large
/// sizes where the old multiply-recurrence visibly drifted.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `rev[i]` = bit-reversed index of `i` (u32 halves the table size).
    rev: Vec<u32>,
    /// Forward stage twiddles: for each stage `len = 2, 4, .., n`, the
    /// `len/2` factors `exp(-i·2πk/len)`, concatenated in stage order.
    twiddles: Vec<Complex>,
    /// `exp(-i·πk/n)` for `k = 0..=n`: the split twiddles that unpack an
    /// `n`-point complex FFT into a `2n`-point real spectrum.
    real_twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FftLengthNotPowerOfTwo`] if `n` is not a power
    /// of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if !n.is_power_of_two() {
            return Err(DspError::FftLengthNotPowerOfTwo(n));
        }
        let bits = n.trailing_zeros();
        let rev = if n <= 1 {
            Vec::new()
        } else {
            (0..n)
                .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) as u32)
                .collect()
        };
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2usize;
        while len <= n {
            let step = std::f64::consts::TAU / len as f64;
            for k in 0..len / 2 {
                let ang = -(k as f64) * step;
                twiddles.push(Complex::new(ang.cos() as f32, ang.sin() as f32));
            }
            len <<= 1;
        }
        let real_twiddles = (0..=n)
            .map(|k| {
                let ang = -std::f64::consts::PI * k as f64 / n.max(1) as f64;
                Complex::new(ang.cos() as f32, ang.sin() as f32)
            })
            .collect();
        Ok(FftPlan {
            n,
            rev,
            twiddles,
            real_twiddles,
        })
    }

    /// The transform size this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the degenerate size-0 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the plan size.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.process::<false>(buf);
    }

    /// In-place inverse FFT of `buf`, including the `1/N` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the plan size.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.process::<true>(buf);
        let scale = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v = v.scale(scale);
        }
    }

    fn process<const INVERSE: bool>(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length must match plan size");
        let n = self.n;
        if n <= 1 {
            return;
        }
        for (i, &j) in self.rev.iter().enumerate() {
            let j = j as usize;
            if j > i {
                buf.swap(i, j);
            }
        }
        let mut offset = 0usize;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let tw = &self.twiddles[offset..offset + half];
            for start in (0..n).step_by(len) {
                for (k, &t) in tw.iter().enumerate() {
                    let w = if INVERSE { t.conj() } else { t };
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

thread_local! {
    static PLANS: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
    static ROOTS: RefCell<HashMap<usize, Rc<Vec<Complex>>>> = RefCell::new(HashMap::new());
}

/// The `n` complex unit roots `exp(-i·2π·m/n)` for `m = 0..n`, from a
/// per-thread cache keyed by `n`.
///
/// This is the exact-phase lookup table for frequency-domain delays: a
/// time shift by `d` samples multiplies bin `k` of an `n`-point FFT by
/// `exp(-i·2πkd/n)`, which is entry `(k·d) mod n` of this table. Fused
/// pipelines that fold delays into a combined transfer function (the
/// acoustics scene engine's propagation delay and reverb taps) index
/// the table instead of evaluating a sine/cosine pair per bin per tap —
/// and unlike a `w *= w₁` recurrence the table is computed directly
/// from each angle in `f64`, so phases are accurate to f32 rounding at
/// any `n`.
///
/// # Panics
///
/// Panics if `n` is zero (any positive `n` is accepted; the table is
/// not tied to power-of-two transform sizes).
pub fn unit_roots(n: usize) -> Rc<Vec<Complex>> {
    assert!(n > 0, "unit_roots(0) has no roots");
    ROOTS.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(r) = cache.get(&n) {
            return Rc::clone(r);
        }
        let table: Vec<Complex> = (0..n)
            .map(|m| {
                let ang = -std::f64::consts::TAU * m as f64 / n as f64;
                Complex::new(ang.cos() as f32, ang.sin() as f32)
            })
            .collect();
        let r = Rc::new(table);
        cache.insert(n, Rc::clone(&r));
        r
    })
}

/// Reused per-thread buffers so the hot paths are allocation-free once
/// warmed up.
#[derive(Default)]
struct Scratch {
    a: Vec<Complex>,
    b: Vec<Complex>,
    gains: Vec<f32>,
}

/// Runs `f` with the cached plan for power-of-two size `n`, building and
/// caching the plan on first use. Reentrant: `f` may itself call
/// [`with_plan`] (the real-input path does, for the half-size kernel).
///
/// # Panics
///
/// Panics if `n` is not a power of two; use [`FftPlan::new`] directly for
/// fallible construction. Callers with arbitrary work sizes must round
/// up via [`next_pow2`] *before* reaching this function — every
/// workspace hot path (the STFT, the correlation engine, the
/// frequency-domain filters) does exactly that, so the panic is a
/// programming-error guard, not a reachable input condition.
pub fn with_plan<R>(n: usize, f: impl FnOnce(&FftPlan) -> R) -> R {
    debug_assert!(
        n.is_power_of_two(),
        "with_plan({n}): size must be rounded up via next_pow2 by the caller"
    );
    let plan = PLANS.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(p) = cache.get(&n) {
            thrubarrier_obs::counter!("dsp.fft_plan.hit").incr();
            Rc::clone(p)
        } else {
            thrubarrier_obs::counter!("dsp.fft_plan.miss").incr();
            let p = Rc::new(FftPlan::new(n).expect("with_plan size must be a power of two"));
            cache.insert(n, Rc::clone(&p));
            p
        }
    });
    f(&plan)
}

/// In-place forward FFT (plan-cached).
///
/// # Errors
///
/// Returns [`DspError::FftLengthNotPowerOfTwo`] if `buf.len()` is not a
/// power of two.
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    if !buf.len().is_power_of_two() {
        return Err(DspError::FftLengthNotPowerOfTwo(buf.len()));
    }
    with_plan(buf.len(), |p| p.forward(buf));
    Ok(())
}

/// In-place inverse FFT (plan-cached, includes the `1/N` normalization).
///
/// # Errors
///
/// Returns [`DspError::FftLengthNotPowerOfTwo`] if `buf.len()` is not a
/// power of two.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    if !buf.len().is_power_of_two() {
        return Err(DspError::FftLengthNotPowerOfTwo(buf.len()));
    }
    with_plan(buf.len(), |p| p.inverse(buf));
    Ok(())
}

/// Writes the non-negative-frequency spectrum (`n/2 + 1` bins) of `signal`
/// zero-padded to power-of-two length `n` into `out`, using the packed
/// real-input fast path (an `n/2`-point complex FFT plus `O(n)` unpacking).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `signal.len() > n`.
pub fn half_spectrum_into(signal: &[f32], n: usize, out: &mut Vec<Complex>) {
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    assert!(signal.len() <= n, "signal longer than fft length");
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        half_spectrum_with(&mut scratch.a, signal, n, out);
    });
}

/// Core of [`half_spectrum_into`] with an explicit packing buffer, so
/// callers inside this module can run it while holding the scratch pool.
fn half_spectrum_with(z: &mut Vec<Complex>, signal: &[f32], n: usize, out: &mut Vec<Complex>) {
    out.clear();
    if n == 1 {
        out.push(Complex::from_real(signal.first().copied().unwrap_or(0.0)));
        return;
    }
    let half = n / 2;
    z.clear();
    z.resize(half, Complex::ZERO);
    for (m, slot) in z.iter_mut().enumerate() {
        let re = signal.get(2 * m).copied().unwrap_or(0.0);
        let im = signal.get(2 * m + 1).copied().unwrap_or(0.0);
        *slot = Complex::new(re, im);
    }
    with_plan(half, |p| {
        p.forward(z);
        out.reserve(half + 1);
        for k in 0..=half {
            let zk = z[k % half];
            let zmk = z[(half - k) % half].conj();
            let even = (zk + zmk).scale(0.5);
            let odd = (zk - zmk) * Complex::new(0.0, -0.5);
            out.push(even + p.real_twiddles[k] * odd);
        }
    });
}

/// Inverse of [`half_spectrum_into`]: reconstructs the length-`n` real
/// signal whose non-negative-frequency spectrum is `spec` (`n/2 + 1`
/// bins, conjugate symmetry implied), appending it to `out`.
///
/// Public so multi-stage spectral pipelines (e.g. the vibration
/// crate's fused conversion engine) can run one forward transform,
/// apply several gain curves to the same spectrum, and come back to the
/// time domain per stage — without paying a forward FFT per stage.
///
/// # Panics
///
/// Panics in debug builds if `spec.len() != n / 2 + 1`.
pub fn real_inverse_into(spec: &[Complex], n: usize, out: &mut Vec<f32>) {
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        real_inverse_with(&mut scratch.a, spec, n, out);
    });
}

/// Core of [`real_inverse_into`] with an explicit unpacking buffer.
fn real_inverse_with(z: &mut Vec<Complex>, spec: &[Complex], n: usize, out: &mut Vec<f32>) {
    debug_assert_eq!(spec.len(), n / 2 + 1);
    if n == 1 {
        out.push(spec[0].re);
        return;
    }
    let half = n / 2;
    z.clear();
    z.reserve(half);
    with_plan(half, |p| {
        for k in 0..half {
            let xk = spec[k];
            let xmk = spec[half - k].conj();
            let even = (xk + xmk).scale(0.5);
            let odd = p.real_twiddles[k].conj() * (xk - xmk).scale(0.5);
            // z_k = even + i * odd
            z.push(even + odd * Complex::I);
        }
        p.inverse(z);
    });
    out.reserve(n);
    for v in z.iter() {
        out.push(v.re);
        out.push(v.im);
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two (or
/// to `min_len`, whichever is larger). Returns the full complex spectrum,
/// reconstructed from the packed real-input fast path via conjugate
/// symmetry.
///
/// # Example
///
/// ```
/// let sig = vec![1.0_f32; 300];
/// let spec = thrubarrier_dsp::fft::fft_padded(&sig, 0);
/// assert_eq!(spec.len(), 512);
/// ```
pub fn fft_padded(signal: &[f32], min_len: usize) -> Vec<Complex> {
    let n = next_pow2(signal.len().max(min_len));
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let spec = &mut scratch.b;
        half_spectrum_with(&mut scratch.a, signal, n, spec);
        let mut full = Vec::with_capacity(n);
        full.extend_from_slice(spec);
        for k in (1..n.div_ceil(2)).rev() {
            full.push(spec[k].conj());
        }
        full
    })
}

/// Magnitude spectrum (first `N/2 + 1` bins) of a real signal, zero-padded
/// to a power of two. Computed with the packed real-input fast path.
///
/// Bin `k` corresponds to frequency `k * sample_rate / N` where `N` is the
/// padded length; use [`bin_frequencies`] to recover the axis.
pub fn magnitude_spectrum(signal: &[f32], min_len: usize) -> Vec<f32> {
    let n = next_pow2(signal.len().max(min_len));
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let spec = &mut scratch.b;
        half_spectrum_with(&mut scratch.a, signal, n, spec);
        spec.iter().map(|c| c.norm()).collect()
    })
}

/// Frequencies (Hz) of the bins returned by [`magnitude_spectrum`] for a
/// padded FFT length `n_fft` at `sample_rate`.
pub fn bin_frequencies(n_fft: usize, sample_rate: u32) -> Vec<f32> {
    let half = n_fft / 2 + 1;
    (0..half)
        .map(|k| k as f32 * sample_rate as f32 / n_fft as f32)
        .collect()
}

/// Filters a real signal by per-bin gains over its padded spectrum:
/// forward real FFT to `n = next_pow2(len)`, multiply bin `k` by
/// `gains[k]` (`n/2 + 1` entries; the negative half follows from
/// conjugate symmetry, keeping the output real), inverse real FFT,
/// truncate to the input length.
///
/// This is the allocation-free core shared by [`apply_frequency_response`]
/// and `ResponseCurve::filter`: plans and scratch come from thread-local
/// caches, so steady state allocates nothing but the returned vector.
pub(crate) fn filter_by_gains(signal: &[f32], n: usize, gains: &[f32]) -> Vec<f32> {
    debug_assert_eq!(gains.len(), n / 2 + 1);
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let spec = &mut scratch.b;
        half_spectrum_with(&mut scratch.a, signal, n, spec);
        for (v, &g) in spec.iter_mut().zip(gains) {
            *v = v.scale(g);
        }
        let mut out = Vec::new();
        real_inverse_with(&mut scratch.a, spec, n, &mut out);
        out.truncate(signal.len());
        out
    })
}

/// Applies a frequency-domain gain curve to a real signal and returns the
/// filtered real signal (same length as the input).
///
/// `gain` is sampled at the non-negative FFT bin frequencies via the
/// provided closure (argument: frequency in Hz); the negative half is
/// mirrored implicitly to keep the output real. This is how barrier
/// transmission and transducer responses are applied throughout the
/// workspace — device hot paths go through
/// [`crate::response::filter_cached`], which additionally caches the
/// sampled gain table per device so the closure is not re-evaluated on
/// every call.
///
/// # Example
///
/// ```
/// use thrubarrier_dsp::{fft, gen};
///
/// let sig = gen::sine(3_000.0, 0.1, 16_000, 1.0);
/// // Brick-wall low-pass at 1 kHz should annihilate a 3 kHz tone.
/// let out = fft::apply_frequency_response(&sig, 16_000, |f| if f < 1_000.0 { 1.0 } else { 0.0 });
/// let rms_out = thrubarrier_dsp::stats::rms(&out);
/// assert!(rms_out < 0.05);
/// ```
pub fn apply_frequency_response<F>(signal: &[f32], sample_rate: u32, gain: F) -> Vec<f32>
where
    F: Fn(f32) -> f32,
{
    if signal.is_empty() {
        return Vec::new();
    }
    let n = next_pow2(signal.len());
    let bin_hz = sample_rate as f32 / n as f32;
    let gains = SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let gains = &mut scratch.gains;
        gains.clear();
        gains.extend((0..=n / 2).map(|k| gain(k as f32 * bin_hz)));
        std::mem::take(gains)
    });
    let out = filter_by_gains(signal, n, &gains);
    SCRATCH.with(|s| s.borrow_mut().gains = gains);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn rejects_non_power_of_two() {
        let mut buf = vec![Complex::ZERO; 3];
        assert_eq!(
            fft_in_place(&mut buf),
            Err(DspError::FftLengthNotPowerOfTwo(3))
        );
        assert!(FftPlan::new(12).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::ZERO; 8];
        buf[0] = Complex::ONE;
        fft_in_place(&mut buf).unwrap();
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-5 && v.im.abs() < 1e-5);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let sig: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let mut buf: Vec<Complex> = sig.iter().map(|&x| Complex::from_real(x)).collect();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, got) in sig.iter().zip(&buf) {
            assert!((orig - got.re).abs() < 1e-3);
            assert!(got.im.abs() < 1e-3);
        }
    }

    /// Naive O(N²) reference DFT.
    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc_re = 0.0f64;
                let mut acc_im = 0.0f64;
                for (j, x) in input.iter().enumerate() {
                    let ang = -std::f64::consts::TAU * (k as f64) * (j as f64) / n as f64;
                    let (s, c) = ang.sin_cos();
                    acc_re += x.re as f64 * c - x.im as f64 * s;
                    acc_im += x.re as f64 * s + x.im as f64 * c;
                }
                Complex::new(acc_re as f32, acc_im as f32)
            })
            .collect()
    }

    #[test]
    fn planned_fft_matches_naive_dft_with_tight_tolerance() {
        // The old per-stage `w *= wlen` recurrence drifted at large N;
        // the plan's direct twiddle tables must track a float64 DFT to
        // within 1e-4 relative error even at N = 4096.
        for n in [8usize, 64, 1024, 4096] {
            let sig: Vec<Complex> = (0..n)
                .map(|i| {
                    let x = i as f32;
                    Complex::new((x * 0.37).sin() + 0.25 * (x * 0.11).cos(), 0.0)
                })
                .collect();
            let reference = naive_dft(&sig);
            let mut fast = sig.clone();
            fft_in_place(&mut fast).unwrap();
            let scale: f32 = reference.iter().map(|c| c.norm()).fold(0.0, f32::max);
            for (k, (f, r)) in fast.iter().zip(&reference).enumerate() {
                let err = (*f - *r).norm() / scale;
                assert!(err < 1e-4, "N={n} bin {k}: error {err}");
            }
        }
    }

    #[test]
    fn half_spectrum_matches_full_transform() {
        let sig: Vec<f32> = (0..100).map(|i| ((i * 13) % 17) as f32 - 8.0).collect();
        for n in [128usize, 256] {
            let mut full: Vec<Complex> = sig.iter().map(|&x| Complex::from_real(x)).collect();
            full.resize(n, Complex::ZERO);
            fft_in_place(&mut full).unwrap();
            let mut half = Vec::new();
            half_spectrum_into(&sig, n, &mut half);
            assert_eq!(half.len(), n / 2 + 1);
            for (k, h) in half.iter().enumerate() {
                assert!(
                    (*h - full[k]).norm() < 1e-3,
                    "bin {k}: {h:?} vs {:?}",
                    full[k]
                );
            }
        }
    }

    #[test]
    fn half_spectrum_tiny_sizes() {
        let mut out = Vec::new();
        half_spectrum_into(&[3.0], 1, &mut out);
        assert_eq!(out.len(), 1);
        assert!((out[0].re - 3.0).abs() < 1e-6);

        half_spectrum_into(&[1.0, 2.0], 2, &mut out);
        assert_eq!(out.len(), 2);
        assert!((out[0].re - 3.0).abs() < 1e-6, "dc {:?}", out[0]);
        assert!((out[1].re - (-1.0)).abs() < 1e-6, "nyquist {:?}", out[1]);
    }

    #[test]
    fn sine_peaks_at_expected_bin() {
        let fs = 16_000u32;
        let sig = gen::sine(1_000.0, 1.0, fs, 0.128); // 2048 samples
        let mags = magnitude_spectrum(&sig, 0);
        let n_fft = 2048;
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak_hz = peak as f32 * fs as f32 / n_fft as f32;
        assert!((peak_hz - 1_000.0).abs() < 10.0, "peak at {peak_hz} Hz");
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let sig: Vec<f32> = (0..128).map(|i| (i as f32 * 0.37).sin()).collect();
        let time_energy: f32 = sig.iter().map(|x| x * x).sum();
        let spec = fft_padded(&sig, 0);
        let freq_energy: f32 = spec.iter().map(|c| c.norm_sq()).sum::<f32>() / spec.len() as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-3);
    }

    #[test]
    fn frequency_response_passes_in_band_tone() {
        let sig = gen::sine(400.0, 0.1, 16_000, 1.0);
        let out = apply_frequency_response(&sig, 16_000, |f| if f < 1_000.0 { 1.0 } else { 0.0 });
        let in_rms = crate::stats::rms(&sig);
        let out_rms = crate::stats::rms(&out);
        assert!((in_rms - out_rms).abs() / in_rms < 0.05);
    }

    #[test]
    fn frequency_response_output_matches_input_length() {
        let sig = vec![0.5_f32; 777];
        let out = apply_frequency_response(&sig, 8_000, |_| 1.0);
        assert_eq!(out.len(), 777);
    }

    #[test]
    fn frequency_response_identity_recovers_signal() {
        let sig: Vec<f32> = (0..333)
            .map(|i| ((i * 29) % 23) as f32 * 0.04 - 0.4)
            .collect();
        let out = apply_frequency_response(&sig, 8_000, |_| 1.0);
        for (a, b) in sig.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn frequency_response_empty_input() {
        let out = apply_frequency_response(&[], 8_000, |_| 1.0);
        assert!(out.is_empty());
    }

    #[test]
    fn bin_frequencies_span_zero_to_nyquist() {
        let f = bin_frequencies(64, 200);
        assert_eq!(f.len(), 33);
        assert_eq!(f[0], 0.0);
        assert!((f[32] - 100.0).abs() < 1e-4);
    }
}
