//! Cached frequency-response curves.
//!
//! Every physical stage in the simulation — barrier transmission,
//! loudspeaker and microphone coloration, accelerometer and wearable
//! pickup, the synthesizer's spectral shaping — filters a signal through
//! a gain-vs-frequency closure via
//! [`fft::apply_frequency_response`](crate::fft::apply_frequency_response).
//! The closures are pure functions of a handful of device parameters, yet
//! the seed implementation re-evaluated their transcendental math for
//! every FFT bin on every call.
//!
//! [`ResponseCurve`] samples a gain closure once into a per-`(n_fft,
//! sample_rate)` table; [`filter_cached`] keys those tables in a
//! two-level cache so repeated calls with the same device parameters
//! (the common case — a device struct filtering many signals of similar
//! length) reduce to a table lookup plus the planned real-FFT filter
//! core, with zero per-call allocation of plan or gain state.
//!
//! The cache is a lock-free thread-local front over a process-wide
//! `RwLock` backing store of `Arc` handles. The front absorbs the
//! steady-state lookups; the backing store exists because the eval
//! runner spawns *fresh* scoped worker threads for every
//! `run_with_selector` call, and a purely thread-local cache dies with
//! them — each new worker generation re-sampled every curve from
//! scratch (a 31% miss rate in the PR 7 benchmark snapshot). Now a new
//! thread's first lookup clones the `Arc` out of the shared store
//! instead of re-evaluating the closure per bin.
//!
//! Cache keys are built with [`curve_key`] from a call-site salt plus the
//! parameter values the closure captures. Distinct closures at one call
//! site must use distinct salts.

use crate::fft;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// A gain-vs-frequency curve pre-sampled at the non-negative FFT bin
/// frequencies of one `(n_fft, sample_rate)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseCurve {
    n_fft: usize,
    sample_rate: u32,
    gains: Vec<f32>,
}

impl ResponseCurve {
    /// Samples `gain` (argument: frequency in Hz) at the `n_fft / 2 + 1`
    /// non-negative bin frequencies of an `n_fft`-point FFT at
    /// `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `n_fft` is not a power of two.
    pub fn sample<F: Fn(f32) -> f32>(n_fft: usize, sample_rate: u32, gain: F) -> Self {
        assert!(n_fft.is_power_of_two(), "n_fft must be a power of two");
        let bin_hz = sample_rate as f32 / n_fft as f32;
        let gains = (0..=n_fft / 2).map(|k| gain(k as f32 * bin_hz)).collect();
        ResponseCurve {
            n_fft,
            sample_rate,
            gains,
        }
    }

    /// The FFT length this curve was sampled for.
    pub fn n_fft(&self) -> usize {
        self.n_fft
    }

    /// The sample rate this curve was sampled for.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// The sampled per-bin gains (`n_fft / 2 + 1` entries).
    pub fn gains(&self) -> &[f32] {
        &self.gains
    }

    /// Filters `signal` through this curve: planned real FFT to `n_fft`,
    /// per-bin gain multiply, real inverse, truncated to the input
    /// length. Matches `fft::apply_frequency_response` of the same
    /// closure exactly when `n_fft == next_pow2(signal.len())`.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() > self.n_fft()`.
    pub fn filter(&self, signal: &[f32]) -> Vec<f32> {
        if signal.is_empty() {
            return Vec::new();
        }
        fft::filter_by_gains(signal, self.n_fft, &self.gains)
    }

    /// Multiplies a half-spectrum (as produced by
    /// [`fft::half_spectrum_into`] at this curve's `n_fft`) by the
    /// sampled per-bin gains, in place. This is the curve applied
    /// *without* its own transform round-trip: fused pipelines take one
    /// forward FFT, chain several curves on the spectrum, and invert
    /// only where a time-domain signal is actually needed.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len()` differs from the table length
    /// (`n_fft / 2 + 1`).
    pub fn apply_to_spectrum(&self, spec: &mut [crate::complex::Complex]) {
        assert_eq!(
            spec.len(),
            self.gains.len(),
            "spectrum bins must match curve table"
        );
        for (v, &g) in spec.iter_mut().zip(&self.gains) {
            *v = v.scale(g);
        }
    }
}

type CurveKey = (u64, usize, u32);

thread_local! {
    static CURVES: RefCell<HashMap<CurveKey, Arc<ResponseCurve>>> = RefCell::new(HashMap::new());
}

/// Process-wide backing store: curves sampled by any thread outlive the
/// short-lived eval worker threads and seed their thread-local fronts.
fn shared_curves() -> &'static RwLock<HashMap<CurveKey, Arc<ResponseCurve>>> {
    static STORE: OnceLock<RwLock<HashMap<CurveKey, Arc<ResponseCurve>>>> = OnceLock::new();
    STORE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Builds a cache key for [`filter_cached`] from a call-site `salt` and
/// the parameter values the gain closure captures.
///
/// The salt distinguishes different closures that happen to capture the
/// same numbers (pick any constant per call site); the parameters
/// distinguish different device configurations at one call site. Hashing
/// uses the exact bit patterns of the floats, so curves are re-sampled
/// whenever a parameter changes at all.
pub fn curve_key(salt: u64, params: &[f32]) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    for p in params {
        p.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Runs `f` with the cached curve for `(key, n_fft, sample_rate)`,
/// sampling `gain` into a new table on first use.
pub fn with_curve<R>(
    key: u64,
    n_fft: usize,
    sample_rate: u32,
    gain: impl Fn(f32) -> f32,
    f: impl FnOnce(&ResponseCurve) -> R,
) -> R {
    let curve = cached_curve(key, n_fft, sample_rate, gain);
    f(&curve)
}

/// The cached curve for `(key, n_fft, sample_rate)` as a shared handle,
/// sampling `gain` into a new table on first use.
///
/// Unlike [`with_curve`] this hands ownership of the table out of the
/// cache, so a caller can hold **several** curves at once (e.g. the
/// fused conversion engine chaining a speaker curve and a coupling
/// curve over one spectrum) without nesting closures or re-hashing per
/// stage.
pub fn cached_curve(
    key: u64,
    n_fft: usize,
    sample_rate: u32,
    gain: impl Fn(f32) -> f32,
) -> Arc<ResponseCurve> {
    let full_key = (key, n_fft, sample_rate);
    CURVES.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(c) = cache.get(&full_key) {
            thrubarrier_obs::counter!("dsp.response_curve.hit").incr();
            return Arc::clone(c);
        }
        // Thread-local miss: consult the process-wide store before
        // paying the per-bin closure evaluation. Lock poisoning only
        // means another thread panicked mid-access; the map itself is
        // always in a consistent state, so recover the guard.
        let shared = shared_curves();
        if let Some(c) = shared
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&full_key)
        {
            thrubarrier_obs::counter!("dsp.response_curve.shared_hit").incr();
            let c = Arc::clone(c);
            cache.insert(full_key, Arc::clone(&c));
            return c;
        }
        thrubarrier_obs::counter!("dsp.response_curve.miss").incr();
        let c = Arc::new(ResponseCurve::sample(n_fft, sample_rate, gain));
        // Another thread may have sampled the same curve while we did;
        // keep whichever landed first so every thread shares one table.
        let c = Arc::clone(
            shared
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .entry(full_key)
                .or_insert(c),
        );
        cache.insert(full_key, Arc::clone(&c));
        c
    })
}

/// Drop-in cached replacement for
/// [`fft::apply_frequency_response`](crate::fft::apply_frequency_response):
/// filters `signal` through `gain`, evaluating the closure only the first
/// time a given `(key, padded-length, sample_rate)` combination is seen
/// on this thread.
///
/// `key` must come from [`curve_key`] over every parameter `gain`
/// captures — a stale key silently reuses the wrong curve.
pub fn filter_cached(
    key: u64,
    signal: &[f32],
    sample_rate: u32,
    gain: impl Fn(f32) -> f32,
) -> Vec<f32> {
    if signal.is_empty() {
        return Vec::new();
    }
    let n = fft::next_pow2(signal.len());
    with_curve(key, n, sample_rate, gain, |curve| curve.filter(signal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn cached_filter_matches_direct_apply() {
        let sig = gen::sine(440.0, 0.05, 8_000, 0.8);
        let gain = |f: f32| 1.0 / (1.0 + (f / 1_000.0).powi(2));
        let direct = fft::apply_frequency_response(&sig, 8_000, gain);
        let key = curve_key(0xBEEF, &[1_000.0]);
        for _ in 0..3 {
            let cached = filter_cached(key, &sig, 8_000, gain);
            assert_eq!(cached.len(), direct.len());
            for (a, b) in direct.iter().zip(&cached) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn different_params_produce_different_keys_and_curves() {
        let k1 = curve_key(1, &[500.0]);
        let k2 = curve_key(1, &[501.0]);
        assert_ne!(k1, k2);
        // A broadband impulse separates the two cutoffs.
        let mut sig = vec![0.0_f32; 64];
        sig[0] = 1.0;
        let low = filter_cached(k1, &sig, 8_000, |f| if f < 500.0 { 1.0 } else { 0.0 });
        let high = filter_cached(k2, &sig, 8_000, |f| if f < 4_000.0 { 1.0 } else { 0.0 });
        assert_ne!(low, high);
    }

    #[test]
    fn curve_tables_have_half_spectrum_length() {
        let c = ResponseCurve::sample(256, 16_000, |f| f);
        assert_eq!(c.gains().len(), 129);
        assert_eq!(c.n_fft(), 256);
        assert_eq!(c.sample_rate(), 16_000);
        // Bin k samples the closure at k * fs / n.
        assert!((c.gains()[1] - 62.5).abs() < 1e-3);
    }

    #[test]
    fn curves_survive_thread_death() {
        // The eval runner respawns scoped worker threads per call;
        // a fresh thread must get the already-sampled table from the
        // process-wide store, not re-sample it.
        let key = curve_key(0x5EED, &[123.0]);
        let a = std::thread::spawn(move || cached_curve(key, 256, 16_000, |f| f + 1.0))
            .join()
            .unwrap();
        let b = std::thread::spawn(move || cached_curve(key, 256, 16_000, |f| f + 1.0))
            .join()
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second thread must reuse the table");
    }

    #[test]
    fn empty_signal_short_circuits() {
        assert!(filter_cached(7, &[], 8_000, |_| 1.0).is_empty());
    }

    #[test]
    fn lengths_cache_independently() {
        // Same key, different padded lengths: each gets its own table.
        let gain = |f: f32| (-(f / 2_000.0)).exp();
        let key = curve_key(42, &[2_000.0]);
        let short = vec![0.3_f32; 100]; // pads to 128
        let long = vec![0.3_f32; 1_000]; // pads to 1024
        let a = filter_cached(key, &short, 16_000, gain);
        let b = filter_cached(key, &long, 16_000, gain);
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 1_000);
        let direct_b = fft::apply_frequency_response(&long, 16_000, gain);
        for (x, y) in b.iter().zip(&direct_b) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
