//! Cross-correlation engine, bounded-lag delay estimation and 2-D Pearson
//! correlation.
//!
//! * The cross-device synchronization step (paper Eq. 5) aligns the VA and
//!   wearable recordings with the lag that maximizes their
//!   cross-correlation. [`estimate_delay`] implements it with a
//!   **bounded-lag** correlator: only the `±max_lag` window of the
//!   correlation is ever materialized, by size-selected choice between a
//!   windowed time-domain scan and frequency-domain circular correlation
//!   on the planned real transform (both exact; the time-domain path
//!   doubles as the parity oracle). A decimate-then-refine coarse-to-fine
//!   search exists as an explicit opt-in for callers that can trade exact
//!   argmax semantics for speed ([`LagSearch::CoarseToFine`]).
//! * [`cross_correlate`] produces the full `N + M - 1` linear correlation
//!   the same way: direct form for small inputs, conjugate-multiply FFT
//!   for the common case, and an overlap-save pass (sharing
//!   [`crate::filter::overlap_save_convolve`]) for long-signal /
//!   short-template shapes.
//! * The attack detector (paper Eq. 6) scores the similarity of two
//!   normalized vibration spectrograms with a 2-D correlation
//!   coefficient; [`spectrogram_correlation`] implements it directly on
//!   the contiguous [`Spectrogram`] layout, and [`correlation_2d`] on raw
//!   row vectors.
//!
//! Every frequency-domain path rounds its transform length up via
//! [`fft::next_pow2`] before touching [`fft::with_plan`], so the
//! power-of-two requirement of the plan cache can never surface as a
//! panic from this module.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft;
use crate::filter;
use crate::resample;
use crate::stats;
use crate::stft::Spectrogram;

/// Path selection for the full linear correlation ([`cross_correlate_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XcorrPath {
    /// Pick a path from the input lengths (measured crossovers; see the
    /// constants in this module).
    #[default]
    Auto,
    /// Direct `O(N·M)` time-domain correlation — exact arithmetic, used
    /// as the parity oracle for the fast paths.
    TimeDomain,
    /// Full-signal FFT correlation: conjugate multiply of the two padded
    /// half spectra on the planned real-input transform.
    Fft,
    /// Overlap-save correlation for long-signal / short-template shapes:
    /// the short side's spectrum is computed once and the long side
    /// streams through fixed-size blocks, keeping per-sample cost
    /// `O(log template)` instead of `O(log(N + M))`.
    OverlapSave,
}

/// Path selection for the bounded-lag search ([`estimate_delay_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LagSearch {
    /// Pick a path from the input lengths and the lag-window width
    /// (measured crossovers; see the constants in this module).
    #[default]
    Auto,
    /// Windowed time-domain scan: one dot product per candidate lag,
    /// `O(W·min(N, M))` total — exact, and the oracle for the others.
    TimeDomain,
    /// Circular FFT correlation sized `next_pow2(max(N, M) + max_lag)` —
    /// roughly half the transform of the full `2N−1` correlation — from
    /// which only the `±max_lag` window is read.
    Fft,
    /// Coarse-to-fine: both signals are boxcar-decimated by
    /// [`COARSE_DECIMATION`], the window is searched at the low rate via
    /// the FFT path, and the estimate is refined exactly at full rate
    /// over `±`[`REFINE_RADIUS`] lags with the time-domain scan.
    ///
    /// **Opt-in approximation** — never chosen by [`LagSearch::Auto`].
    /// It recovers a genuinely embedded delay exactly (property-tested
    /// at 16/48 kHz across the network-delay envelope), but when the
    /// correlation surface carries near-tied side lobes the decimated
    /// argmax can land on a different lobe than the exact argmax:
    /// measured on the eval corpus, speech pitch side lobes one F0
    /// period (~75–110 samples at 16 kHz) from the true peak reorder
    /// under decimation, and on uncorrelated attack-trial pairs the
    /// surface is flat enough that *any* coarse search shifts the
    /// reported lag. Callers that only need fast alignment of sharply
    /// peaked signals can request it; callers whose downstream scores
    /// depend on exact argmax semantics should stay on `Auto`.
    CoarseToFine,
}

/// `min(N, M) · max(N, M)` multiply-adds below which the direct form wins
/// the full correlation (measured on the bench host: the direct form ran
/// 3x faster at 4k MACs and lost from ~16k MACs up, where the FFT's
/// fixed plan-lookup + pack/unpack overhead stops dominating).
const XCORR_TIME_MAX_MACS: usize = 1 << 13;

/// Overlap-save only pays off when the template's spectrum is reused
/// across many blocks: template at most this long ...
const OVERLAP_SAVE_MAX_TEMPLATE: usize = 4_096;

/// ... and the other input at least this factor longer. Below the ratio
/// the single big FFT is measurably cheaper than the block stream.
const OVERLAP_SAVE_MIN_RATIO: usize = 8;

/// `W · min(N, M)` multiply-adds below which the windowed time-domain
/// scan beats the bounded FFT (measured on the bench host: the FFT path
/// costs three transforms regardless of how narrow the window is, and
/// won from ~64k MACs up — e.g. already 1.8x at N=512, W=257).
const LAG_TIME_MAX_MACS: usize = 1 << 15;

/// Decimation factor of the coarse pass. At the paper's 16 kHz audio
/// rate this searches the lag window at an effective 2 kHz; the boxcar's
/// first spectral null lands at `fs / 8`, enough anti-aliasing for the
/// broad speech correlation peak to survive while the coarse FFT shrinks
/// by 8x (and its lag window by 8x on top).
const COARSE_DECIMATION: usize = 8;

/// Full-rate lags searched around the coarse estimate. Boxcar decimation
/// can move the coarse peak by ±1 coarse sample (±[`COARSE_DECIMATION`]
/// fine lags); twice that margin absorbs the filter transition as well.
const REFINE_RADIUS: isize = 2 * COARSE_DECIMATION as isize;

/// Full linear cross-correlation of `a` and `b`, path chosen by input
/// size ([`XcorrPath::Auto`]).
///
/// The output has length `a.len() + b.len() - 1`; index
/// `k` corresponds to lag `k - (b.len() - 1)` of `a` relative to `b`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty.
pub fn cross_correlate(a: &[f32], b: &[f32]) -> Result<Vec<f32>, DspError> {
    cross_correlate_with(a, b, XcorrPath::Auto)
}

/// [`cross_correlate`] with an explicit path (parity tests and benches
/// force each one; [`XcorrPath::Auto`] reproduces the public behaviour).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty.
pub fn cross_correlate_with(a: &[f32], b: &[f32], path: XcorrPath) -> Result<Vec<f32>, DspError> {
    if a.is_empty() {
        return Err(DspError::EmptyInput("cross_correlate lhs"));
    }
    if b.is_empty() {
        return Err(DspError::EmptyInput("cross_correlate rhs"));
    }
    let _span = thrubarrier_obs::span!("dsp.cross_correlate");
    let path = match path {
        XcorrPath::Auto => choose_xcorr_path(a.len(), b.len()),
        p => p,
    };
    match path {
        XcorrPath::TimeDomain => {
            thrubarrier_obs::counter!("dsp.xcorr.path.time").incr();
            Ok(cross_correlate_time(a, b))
        }
        XcorrPath::Fft => {
            thrubarrier_obs::counter!("dsp.xcorr.path.fft").incr();
            Ok(xcorr_fft_full(a, b))
        }
        XcorrPath::OverlapSave => {
            thrubarrier_obs::counter!("dsp.xcorr.path.overlap_save").incr();
            Ok(xcorr_overlap_save(a, b))
        }
        XcorrPath::Auto => unreachable!("Auto resolved above"),
    }
}

/// Measured size heuristic for [`XcorrPath::Auto`].
fn choose_xcorr_path(n: usize, m: usize) -> XcorrPath {
    let short = n.min(m);
    let long = n.max(m);
    if short.saturating_mul(long) <= XCORR_TIME_MAX_MACS {
        XcorrPath::TimeDomain
    } else if short <= OVERLAP_SAVE_MAX_TEMPLATE && long / short >= OVERLAP_SAVE_MIN_RATIO {
        XcorrPath::OverlapSave
    } else {
        XcorrPath::Fft
    }
}

/// Direct `O(N·M)` cross-correlation with [`cross_correlate`]'s exact
/// output layout. Exact (no transform rounding): this is the parity
/// oracle the proptests pin the fast paths against. Empty inputs yield
/// an empty output.
pub fn cross_correlate_time(a: &[f32], b: &[f32]) -> Vec<f32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let m = b.len() as isize;
    let out_len = a.len() + b.len() - 1;
    (0..out_len as isize)
        .map(|k| lag_dot(a, b, k - (m - 1)))
        .collect()
}

/// One correlation value: `c[lag] = Σ_i a[i] · b[i − lag]` over the
/// overlapping support (zero when the supports are disjoint).
fn lag_dot(a: &[f32], b: &[f32], lag: isize) -> f32 {
    let i0 = lag.max(0);
    let i1 = (a.len() as isize).min(b.len() as isize + lag);
    if i1 <= i0 {
        return 0.0;
    }
    let ai = &a[i0 as usize..i1 as usize];
    let bi = &b[(i0 - lag) as usize..];
    ai.iter().zip(bi).map(|(x, y)| x * y).sum()
}

/// Full correlation via one conjugate multiply of the padded half
/// spectra (transform length `next_pow2(N + M - 1)`).
fn xcorr_fft_full(a: &[f32], b: &[f32]) -> Vec<f32> {
    let out_len = a.len() + b.len() - 1;
    let n = fft::next_pow2(out_len);
    // Both inputs are real, so only the non-negative half spectra are
    // needed: their product is conjugate-symmetric, and the planned real
    // inverse reconstructs the correlation at half the transform cost of
    // the full complex route.
    let mut fa: Vec<Complex> = Vec::new();
    let mut fb: Vec<Complex> = Vec::new();
    fft::half_spectrum_into(a, n, &mut fa);
    // Reverse b to turn convolution into correlation.
    let rb: Vec<f32> = b.iter().rev().copied().collect();
    fft::half_spectrum_into(&rb, n, &mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    let mut out = Vec::new();
    fft::real_inverse_into(&fa, n, &mut out);
    out.truncate(out_len);
    out
}

/// Full correlation as an overlap-save convolution with the reversed
/// template. Convolution commutes, so the shorter input always serves as
/// the template whose spectrum is computed once.
fn xcorr_overlap_save(a: &[f32], b: &[f32]) -> Vec<f32> {
    let rb: Vec<f32> = b.iter().rev().copied().collect();
    // cross_correlate(a, b) == convolve(a, reverse(b)), index for index.
    if b.len() <= a.len() {
        filter::overlap_save_convolve(a, &rb)
    } else {
        filter::overlap_save_convolve(&rb, a)
    }
}

/// Estimates the delay (in samples) of `delayed` relative to `reference`
/// by maximizing the cross-correlation over `±max_lag`, materializing
/// only that window ([`LagSearch::Auto`]). A positive return value means
/// `delayed` starts `k` samples later than `reference`.
///
/// `max_lag` bounds the search (use e.g. 2x the worst-case network delay).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty.
///
/// # Example
///
/// ```
/// use thrubarrier_dsp::{correlate, gen};
///
/// # fn main() -> Result<(), thrubarrier_dsp::DspError> {
/// let reference = gen::chirp(100.0, 1_000.0, 1.0, 16_000, 0.2);
/// let mut delayed = vec![0.0; 37];
/// delayed.extend_from_slice(&reference);
/// let lag = correlate::estimate_delay(&reference, &delayed, 100)?;
/// assert_eq!(lag, 37);
/// # Ok(())
/// # }
/// ```
pub fn estimate_delay(
    reference: &[f32],
    delayed: &[f32],
    max_lag: usize,
) -> Result<isize, DspError> {
    estimate_delay_with(reference, delayed, max_lag, LagSearch::Auto)
}

/// [`estimate_delay`] with an explicit search path (parity tests and
/// benches force each one; [`LagSearch::Auto`] reproduces the public
/// behaviour).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty.
pub fn estimate_delay_with(
    reference: &[f32],
    delayed: &[f32],
    max_lag: usize,
    search: LagSearch,
) -> Result<isize, DspError> {
    if delayed.is_empty() {
        return Err(DspError::EmptyInput("estimate_delay delayed"));
    }
    if reference.is_empty() {
        return Err(DspError::EmptyInput("estimate_delay reference"));
    }
    let _span = thrubarrier_obs::span!("dsp.estimate_delay");
    // Lags of `delayed` relative to `reference` with any overlap at all
    // live in [-(M-1), N-1]; clamp the requested window to that range.
    let lag_lo = -(max_lag.min(reference.len() - 1) as isize);
    let lag_hi = max_lag.min(delayed.len() - 1) as isize;
    let search = match search {
        LagSearch::Auto => choose_lag_search(
            delayed.len(),
            reference.len(),
            (lag_hi - lag_lo + 1) as usize,
        ),
        s => s,
    };
    let lag = match search {
        LagSearch::TimeDomain => {
            thrubarrier_obs::counter!("dsp.estimate_delay.path.time").incr();
            let window = bounded_window_time(delayed, reference, lag_lo, lag_hi);
            lag_lo + stats::argmax(&window).expect("window is non-empty") as isize
        }
        LagSearch::Fft => {
            thrubarrier_obs::counter!("dsp.estimate_delay.path.fft").incr();
            let window = bounded_window_fft(delayed, reference, lag_lo, lag_hi);
            lag_lo + stats::argmax(&window).expect("window is non-empty") as isize
        }
        LagSearch::CoarseToFine => {
            thrubarrier_obs::counter!("dsp.estimate_delay.path.coarse_fine").incr();
            coarse_to_fine_lag(delayed, reference, lag_lo, lag_hi)
        }
        LagSearch::Auto => unreachable!("Auto resolved above"),
    };
    Ok(lag)
}

/// Measured size heuristic for [`LagSearch::Auto`].
///
/// Auto only ever picks between the two *exact* searches. Coarse-to-fine
/// is faster still (0.47 ms vs 1.3 ms at the 1 s sync shape) but is an
/// approximation on near-tied and flat correlation surfaces — selecting
/// it by size alone measurably shifted downstream detection scores on
/// the eval corpus (see [`LagSearch::CoarseToFine`]) — so it stays a
/// caller decision rather than a size decision.
fn choose_lag_search(n: usize, m: usize, window: usize) -> LagSearch {
    let short = n.min(m);
    if window.saturating_mul(short) <= LAG_TIME_MAX_MACS {
        LagSearch::TimeDomain
    } else {
        LagSearch::Fft
    }
}

/// The `lag_lo..=lag_hi` correlation window of `a` against `b`, one
/// exact dot product per lag.
fn bounded_window_time(a: &[f32], b: &[f32], lag_lo: isize, lag_hi: isize) -> Vec<f32> {
    (lag_lo..=lag_hi).map(|lag| lag_dot(a, b, lag)).collect()
}

/// The same window via circular FFT correlation. The transform length
/// `next_pow2(max(N + |lag_lo|, M + lag_hi))` is exactly what keeps the
/// window free of circular aliasing — for the sync workload (N ≈ M ≈ 1 s,
/// `max_lag` ≈ 0.25 s) it is half the `next_pow2(N + M - 1)` transform
/// of the full correlation.
fn bounded_window_fft(a: &[f32], b: &[f32], lag_lo: isize, lag_hi: isize) -> Vec<f32> {
    let n_fft = fft::next_pow2(
        (a.len() + lag_lo.unsigned_abs()).max(b.len() + lag_hi.max(0).unsigned_abs()),
    );
    let mut fa: Vec<Complex> = Vec::new();
    let mut fb: Vec<Complex> = Vec::new();
    fft::half_spectrum_into(a, n_fft, &mut fa);
    fft::half_spectrum_into(b, n_fft, &mut fb);
    // X(f)·conj(Y(f)) is the spectrum of the circular correlation
    // Σ_i a[i]·b[(i − k) mod n]; with the padding above, the window's
    // lags never wrap into occupied samples.
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= y.conj();
    }
    let mut circ = Vec::new();
    fft::real_inverse_into(&fa, n_fft, &mut circ);
    (lag_lo..=lag_hi)
        .map(|lag| circ[lag.rem_euclid(n_fft as isize) as usize])
        .collect()
}

/// Coarse-to-fine bounded-lag search: boxcar-decimate both signals by
/// [`COARSE_DECIMATION`], locate the peak at the low rate with the
/// bounded FFT window, then rescan `±`[`REFINE_RADIUS`] full-rate lags
/// around the scaled-up coarse estimate with exact dot products.
fn coarse_to_fine_lag(a: &[f32], b: &[f32], lag_lo: isize, lag_hi: isize) -> isize {
    let d = COARSE_DECIMATION as isize;
    let ca = resample::decimate_boxcar(a, COARSE_DECIMATION).expect("factor is non-zero");
    let cb = resample::decimate_boxcar(b, COARSE_DECIMATION).expect("factor is non-zero");
    // One coarse lag of slack on each side covers the rounding of the
    // window bounds to the coarse grid.
    let c_lo = (lag_lo.div_euclid(d) - 1).max(-(cb.len() as isize - 1));
    let c_hi = (lag_hi.div_euclid(d) + 2).min(ca.len() as isize - 1);
    let coarse = {
        let _span = thrubarrier_obs::span!("dsp.estimate_delay.coarse");
        let window = bounded_window_fft(&ca, &cb, c_lo, c_hi);
        (c_lo + stats::argmax(&window).expect("window is non-empty") as isize) * d
    };
    let _span = thrubarrier_obs::span!("dsp.estimate_delay.refine");
    let r_lo = (coarse - REFINE_RADIUS).clamp(lag_lo, lag_hi);
    let r_hi = (coarse + REFINE_RADIUS).clamp(lag_lo, lag_hi);
    let window = bounded_window_time(a, b, r_lo, r_hi);
    let best = r_lo + stats::argmax(&window).expect("window is non-empty") as isize;
    // How far the exact peak sat from the coarse estimate; values at the
    // histogram's top bucket (== REFINE_RADIUS) mean the refinement
    // window may be clipping real peaks.
    thrubarrier_obs::histogram!("dsp.estimate_delay.refine_shift")
        .record((best - coarse).unsigned_abs() as u64);
    best
}

/// Removes the first `delay` samples if positive, or prepends zeros if
/// negative, returning a signal aligned with the reference.
pub fn align_by_delay(signal: &[f32], delay: isize) -> Vec<f32> {
    if delay >= 0 {
        let d = delay as usize;
        if d >= signal.len() {
            Vec::new()
        } else {
            signal[d..].to_vec()
        }
    } else {
        let d = (-delay) as usize;
        let mut out = vec![0.0; d];
        out.extend_from_slice(signal);
        out
    }
}

/// 2-D correlation coefficient between two feature maps (paper Eq. 6).
///
/// Both maps are flattened over their common time support (the first
/// `min(frames)` rows) and compared with a Pearson correlation
/// coefficient. Returns a value in `[-1, 1]`; `0.0` when either map is
/// constant or when there is no overlap.
///
/// # Errors
///
/// Returns [`DspError::DimensionMismatch`] if the maps have different bin
/// counts.
pub fn correlation_2d(a: &[Vec<f32>], b: &[Vec<f32>]) -> Result<f32, DspError> {
    let frames = a.len().min(b.len());
    if frames == 0 {
        return Ok(0.0);
    }
    let bins_a = a[0].len();
    let bins_b = b[0].len();
    if bins_a != bins_b {
        return Err(DspError::DimensionMismatch {
            left: bins_a,
            right: bins_b,
        });
    }
    let fa: Vec<f32> = a.iter().take(frames).flatten().copied().collect();
    let fb: Vec<f32> = b.iter().take(frames).flatten().copied().collect();
    Ok(stats::pearson(&fa, &fb))
}

/// [`correlation_2d`] specialized to [`Spectrogram`]s: the same Pearson
/// score (identical arithmetic and result), computed by streaming over
/// the spectrograms' contiguous rows without flattening either map into a
/// temporary vector.
///
/// # Errors
///
/// Returns [`DspError::DimensionMismatch`] if the spectrograms have
/// different bin counts.
pub fn spectrogram_correlation(a: &Spectrogram, b: &Spectrogram) -> Result<f32, DspError> {
    let _span = thrubarrier_obs::span!("dsp.correlation_2d");
    let frames = a.frames().min(b.frames());
    if frames == 0 {
        return Ok(0.0);
    }
    if a.bins() != b.bins() {
        return Err(DspError::DimensionMismatch {
            left: a.bins(),
            right: b.bins(),
        });
    }
    let count = frames * a.bins();
    if count == 0 {
        return Ok(0.0);
    }
    // Mirror `stats::pearson` exactly: f32 means, then f64-accumulated
    // mean-centered moments, walking values in row-major order.
    let ma = a.rows().take(frames).flatten().sum::<f32>() / count as f32;
    let mb = b.rows().take(frames).flatten().sum::<f32>() / count as f32;
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (ra, rb) in a.rows().take(frames).zip(b.rows().take(frames)) {
        for (&x, &y) in ra.iter().zip(rb) {
            let dx = (x - ma) as f64;
            let dy = (y - mb) as f64;
            cov += dx * dy;
            va += dx * dx;
            vb += dy * dy;
        }
    }
    if va <= f64::EPSILON || vb <= f64::EPSILON {
        return Ok(0.0);
    }
    Ok((cov / (va.sqrt() * vb.sqrt())) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ALL_XCORR_PATHS: [XcorrPath; 4] = [
        XcorrPath::Auto,
        XcorrPath::TimeDomain,
        XcorrPath::Fft,
        XcorrPath::OverlapSave,
    ];

    const ALL_LAG_SEARCHES: [LagSearch; 4] = [
        LagSearch::Auto,
        LagSearch::TimeDomain,
        LagSearch::Fft,
        LagSearch::CoarseToFine,
    ];

    #[test]
    fn cross_correlation_matches_naive_on_every_path() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [0.5f32, -1.0];
        // Naive correlation: c[k] = sum_i a[i] * b[i - (k - (len_b - 1))].
        let mut naive = vec![0.0f32; a.len() + b.len() - 1];
        for (k, slot) in naive.iter_mut().enumerate() {
            let lag = k as isize - (b.len() as isize - 1);
            let mut acc = 0.0;
            for (i, &ai) in a.iter().enumerate() {
                let j = i as isize - lag;
                if j >= 0 && (j as usize) < b.len() {
                    acc += ai * b[j as usize];
                }
            }
            *slot = acc;
        }
        for path in ALL_XCORR_PATHS {
            let fast = cross_correlate_with(&a, &b, path).unwrap();
            assert_eq!(fast.len(), naive.len());
            for (f, n) in fast.iter().zip(&naive) {
                assert!((f - n).abs() < 1e-4, "{path:?}: {fast:?} vs {naive:?}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(cross_correlate(&[], &[1.0]).is_err());
        assert!(cross_correlate(&[1.0], &[]).is_err());
        assert!(estimate_delay(&[], &[1.0], 4).is_err());
        assert!(estimate_delay(&[1.0], &[], 4).is_err());
    }

    #[test]
    fn single_sample_inputs_work_on_every_path() {
        for path in ALL_XCORR_PATHS {
            let c = cross_correlate_with(&[2.0], &[3.0], path).unwrap();
            assert_eq!(c.len(), 1);
            assert!((c[0] - 6.0).abs() < 1e-5, "{path:?}: {c:?}");
        }
        for search in ALL_LAG_SEARCHES {
            assert_eq!(estimate_delay_with(&[1.0], &[1.0], 10, search).unwrap(), 0);
        }
    }

    #[test]
    fn overlap_save_path_handles_short_lhs() {
        // The template side may be either argument; both orders must
        // produce the directed correlation of (a, b).
        let long: Vec<f32> = (0..500)
            .map(|i| ((i * 7) % 13) as f32 * 0.1 - 0.6)
            .collect();
        let short: Vec<f32> = (0..9).map(|i| ((i * 5) % 11) as f32 * 0.2 - 1.0).collect();
        for (a, b) in [(&long[..], &short[..]), (&short[..], &long[..])] {
            let fast = cross_correlate_with(a, b, XcorrPath::OverlapSave).unwrap();
            let oracle = cross_correlate_time(a, b);
            assert_eq!(fast.len(), oracle.len());
            let scale = oracle.iter().fold(1.0f32, |m, &v| m.max(v.abs()));
            for (i, (f, r)) in fast.iter().zip(&oracle).enumerate() {
                assert!((f - r).abs() / scale < 1e-4, "sample {i}: {f} vs {r}");
            }
        }
    }

    #[test]
    fn delay_estimation_recovers_known_lag_on_every_path() {
        let mut rng = StdRng::seed_from_u64(11);
        let reference = gen::gaussian_noise(&mut rng, 1.0, 2_000);
        for search in ALL_LAG_SEARCHES {
            for lag in [0usize, 5, 160, 999] {
                let mut delayed = vec![0.0f32; lag];
                delayed.extend_from_slice(&reference);
                let est = estimate_delay_with(&reference, &delayed, 1_000, search).unwrap();
                assert_eq!(est, lag as isize, "{search:?} lag {lag}");
            }
        }
    }

    #[test]
    fn delay_estimation_recovers_negative_lag() {
        let mut rng = StdRng::seed_from_u64(19);
        let delayed = gen::gaussian_noise(&mut rng, 1.0, 2_000);
        for cut in [1usize, 37, 512] {
            // `delayed` is the reference with its first `cut` samples
            // missing, i.e. it starts `cut` samples *early*.
            let reference = [vec![0.0f32; cut], delayed.clone()].concat();
            for search in ALL_LAG_SEARCHES {
                let est = estimate_delay_with(&reference, &delayed, 1_000, search).unwrap();
                assert_eq!(est, -(cut as isize), "{search:?} cut {cut}");
            }
        }
    }

    #[test]
    fn delay_estimation_with_noise() {
        let mut rng = StdRng::seed_from_u64(13);
        let reference = gen::chirp(50.0, 3_000.0, 1.0, 16_000, 0.3);
        let mut delayed = vec![0.0f32; 640];
        delayed.extend_from_slice(&reference);
        let noise = gen::gaussian_noise(&mut rng, 0.2, delayed.len());
        for (d, n) in delayed.iter_mut().zip(&noise) {
            *d += n;
        }
        for search in ALL_LAG_SEARCHES {
            let est = estimate_delay_with(&reference, &delayed, 3_200, search).unwrap();
            assert!((est - 640).abs() <= 2, "{search:?} estimated {est}");
        }
    }

    #[test]
    fn bounded_window_matches_full_correlation_slice() {
        // The windowed paths must agree with slicing the same lags out
        // of the full correlation — the legacy implementation.
        let mut rng = StdRng::seed_from_u64(29);
        let reference = gen::gaussian_noise(&mut rng, 1.0, 300);
        let delayed = gen::gaussian_noise(&mut rng, 1.0, 260);
        let full = cross_correlate_time(&delayed, &reference);
        let zero = reference.len() - 1;
        for max_lag in [0usize, 3, 50, 1_000] {
            let lo = zero.saturating_sub(max_lag);
            let hi = (zero + max_lag + 1).min(full.len());
            let legacy = lo + stats::argmax(&full[lo..hi]).unwrap();
            let want = legacy as isize - zero as isize;
            for search in [LagSearch::TimeDomain, LagSearch::Fft] {
                let est = estimate_delay_with(&reference, &delayed, max_lag, search).unwrap();
                assert_eq!(est, want, "{search:?} max_lag {max_lag}");
            }
        }
    }

    #[test]
    fn auto_path_selection_covers_all_paths() {
        assert_eq!(choose_xcorr_path(16, 16), XcorrPath::TimeDomain);
        assert_eq!(choose_xcorr_path(100_000, 64), XcorrPath::OverlapSave);
        assert_eq!(choose_xcorr_path(16_000, 16_000), XcorrPath::Fft);
        assert_eq!(choose_lag_search(500, 500, 64), LagSearch::TimeDomain);
        assert_eq!(choose_lag_search(4_000, 4_000, 2_048), LagSearch::Fft);
        // Auto never trades exactness for speed: the big-input case stays
        // on the exact FFT window, not coarse-to-fine.
        assert_eq!(choose_lag_search(16_000, 16_000, 8_001), LagSearch::Fft);
    }

    #[test]
    fn align_by_delay_positive_and_negative() {
        let sig = vec![1.0, 2.0, 3.0];
        assert_eq!(align_by_delay(&sig, 1), vec![2.0, 3.0]);
        assert_eq!(align_by_delay(&sig, -2), vec![0.0, 0.0, 1.0, 2.0, 3.0]);
        assert!(align_by_delay(&sig, 10).is_empty());
    }

    #[test]
    fn correlation_2d_identical_maps_is_one() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        assert!((correlation_2d(&a, &a).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn correlation_2d_truncates_to_common_frames() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let b = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![9.0, 9.0]];
        assert!((correlation_2d(&a, &b).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn correlation_2d_dimension_mismatch() {
        let a = vec![vec![1.0, 2.0]];
        let b = vec![vec![1.0, 2.0, 3.0]];
        assert!(correlation_2d(&a, &b).is_err());
    }

    #[test]
    fn correlation_2d_independent_noise_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let a: Vec<Vec<f32>> = (0..30)
            .map(|_| gen::gaussian_noise(&mut rng, 1.0, 31))
            .collect();
        let b: Vec<Vec<f32>> = (0..30)
            .map(|_| gen::gaussian_noise(&mut rng, 1.0, 31))
            .collect();
        let r = correlation_2d(&a, &b).unwrap();
        assert!(r.abs() < 0.12, "independent noise correlated at {r}");
    }

    #[test]
    fn spectrogram_correlation_matches_flattened_pearson() {
        use crate::stft::Stft;
        let mut rng = StdRng::seed_from_u64(23);
        let fs = 200u32;
        let x = gen::gaussian_noise(&mut rng, 1.0, 600);
        let y: Vec<f32> = x
            .iter()
            .zip(gen::gaussian_noise(&mut rng, 0.3, 600))
            .map(|(a, n)| a + n)
            .collect();
        let stft = Stft::vibration_default();
        for crop in [false, true] {
            let mut sa = stft.power_spectrogram(&x, fs);
            let mut sb = stft.power_spectrogram(&y, fs);
            if crop {
                sa.crop_low_frequencies(5.0);
                sb.crop_low_frequencies(5.0);
            }
            let streamed = spectrogram_correlation(&sa, &sb).unwrap();
            let ra: Vec<Vec<f32>> = sa.rows().map(|r| r.to_vec()).collect();
            let rb: Vec<Vec<f32>> = sb.rows().map(|r| r.to_vec()).collect();
            let flattened = correlation_2d(&ra, &rb).unwrap();
            assert_eq!(streamed, flattened, "crop={crop}");
            assert!(streamed > 0.5, "signal+noise should correlate: {streamed}");
        }
    }

    #[test]
    fn spectrogram_correlation_identical_is_one() {
        let spec = crate::stft::Stft::vibration_default()
            .power_spectrogram(&gen::sine(25.0, 1.0, 200, 1.0), 200);
        let r = spectrogram_correlation(&spec, &spec).unwrap();
        assert!((r - 1.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn correlation_2d_empty_is_zero() {
        let a: Vec<Vec<f32>> = Vec::new();
        let b = vec![vec![1.0]];
        assert_eq!(correlation_2d(&a, &b).unwrap(), 0.0);
    }
}
