//! Cross-correlation, delay estimation and 2-D Pearson correlation.
//!
//! * The cross-device synchronization step (paper Eq. 5) aligns the VA and
//!   wearable recordings with the lag that maximizes their
//!   cross-correlation; [`estimate_delay`] implements it with an
//!   FFT-based correlator running on the planned real-input transform.
//! * The attack detector (paper Eq. 6) scores the similarity of two
//!   normalized vibration spectrograms with a 2-D correlation
//!   coefficient; [`spectrogram_correlation`] implements it directly on
//!   the contiguous [`Spectrogram`] layout, and [`correlation_2d`] on raw
//!   row vectors.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft;
use crate::stats;
use crate::stft::Spectrogram;

/// Full linear cross-correlation of `a` and `b` computed via FFT.
///
/// The output has length `a.len() + b.len() - 1`; index
/// `k` corresponds to lag `k - (b.len() - 1)` of `a` relative to `b`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty.
pub fn cross_correlate(a: &[f32], b: &[f32]) -> Result<Vec<f32>, DspError> {
    if a.is_empty() {
        return Err(DspError::EmptyInput("cross_correlate lhs"));
    }
    if b.is_empty() {
        return Err(DspError::EmptyInput("cross_correlate rhs"));
    }
    let _span = thrubarrier_obs::span!("dsp.cross_correlate");
    let out_len = a.len() + b.len() - 1;
    let n = fft::next_pow2(out_len);
    // Both inputs are real, so only the non-negative half spectra are
    // needed: their product is conjugate-symmetric, and the planned real
    // inverse reconstructs the correlation at half the transform cost of
    // the full complex route.
    let mut fa: Vec<Complex> = Vec::new();
    let mut fb: Vec<Complex> = Vec::new();
    fft::half_spectrum_into(a, n, &mut fa);
    // Reverse b to turn convolution into correlation.
    let rb: Vec<f32> = b.iter().rev().copied().collect();
    fft::half_spectrum_into(&rb, n, &mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    let mut out = Vec::new();
    fft::real_inverse_into(&fa, n, &mut out);
    out.truncate(out_len);
    Ok(out)
}

/// Estimates the delay (in samples) of `delayed` relative to `reference`
/// by maximizing the cross-correlation. A positive return value means
/// `delayed` starts `k` samples later than `reference`.
///
/// `max_lag` bounds the search (use e.g. 2x the worst-case network delay).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty.
///
/// # Example
///
/// ```
/// use thrubarrier_dsp::{correlate, gen};
///
/// # fn main() -> Result<(), thrubarrier_dsp::DspError> {
/// let reference = gen::chirp(100.0, 1_000.0, 1.0, 16_000, 0.2);
/// let mut delayed = vec![0.0; 37];
/// delayed.extend_from_slice(&reference);
/// let lag = correlate::estimate_delay(&reference, &delayed, 100)?;
/// assert_eq!(lag, 37);
/// # Ok(())
/// # }
/// ```
pub fn estimate_delay(
    reference: &[f32],
    delayed: &[f32],
    max_lag: usize,
) -> Result<isize, DspError> {
    let corr = cross_correlate(delayed, reference)?;
    // Index k corresponds to lag k - (reference.len() - 1) of `delayed`
    // relative to `reference`.
    let zero = reference.len() - 1;
    let lo = zero.saturating_sub(max_lag);
    let hi = (zero + max_lag + 1).min(corr.len());
    let window = &corr[lo..hi];
    let best = stats::argmax(window).expect("window is non-empty");
    Ok((lo + best) as isize - zero as isize)
}

/// Removes the first `delay` samples if positive, or prepends zeros if
/// negative, returning a signal aligned with the reference.
pub fn align_by_delay(signal: &[f32], delay: isize) -> Vec<f32> {
    if delay >= 0 {
        let d = delay as usize;
        if d >= signal.len() {
            Vec::new()
        } else {
            signal[d..].to_vec()
        }
    } else {
        let d = (-delay) as usize;
        let mut out = vec![0.0; d];
        out.extend_from_slice(signal);
        out
    }
}

/// 2-D correlation coefficient between two feature maps (paper Eq. 6).
///
/// Both maps are flattened over their common time support (the first
/// `min(frames)` rows) and compared with a Pearson correlation
/// coefficient. Returns a value in `[-1, 1]`; `0.0` when either map is
/// constant or when there is no overlap.
///
/// # Errors
///
/// Returns [`DspError::DimensionMismatch`] if the maps have different bin
/// counts.
pub fn correlation_2d(a: &[Vec<f32>], b: &[Vec<f32>]) -> Result<f32, DspError> {
    let frames = a.len().min(b.len());
    if frames == 0 {
        return Ok(0.0);
    }
    let bins_a = a[0].len();
    let bins_b = b[0].len();
    if bins_a != bins_b {
        return Err(DspError::DimensionMismatch {
            left: bins_a,
            right: bins_b,
        });
    }
    let fa: Vec<f32> = a.iter().take(frames).flatten().copied().collect();
    let fb: Vec<f32> = b.iter().take(frames).flatten().copied().collect();
    Ok(stats::pearson(&fa, &fb))
}

/// [`correlation_2d`] specialized to [`Spectrogram`]s: the same Pearson
/// score (identical arithmetic and result), computed by streaming over
/// the spectrograms' contiguous rows without flattening either map into a
/// temporary vector.
///
/// # Errors
///
/// Returns [`DspError::DimensionMismatch`] if the spectrograms have
/// different bin counts.
pub fn spectrogram_correlation(a: &Spectrogram, b: &Spectrogram) -> Result<f32, DspError> {
    let _span = thrubarrier_obs::span!("dsp.correlation_2d");
    let frames = a.frames().min(b.frames());
    if frames == 0 {
        return Ok(0.0);
    }
    if a.bins() != b.bins() {
        return Err(DspError::DimensionMismatch {
            left: a.bins(),
            right: b.bins(),
        });
    }
    let count = frames * a.bins();
    if count == 0 {
        return Ok(0.0);
    }
    // Mirror `stats::pearson` exactly: f32 means, then f64-accumulated
    // mean-centered moments, walking values in row-major order.
    let ma = a.rows().take(frames).flatten().sum::<f32>() / count as f32;
    let mb = b.rows().take(frames).flatten().sum::<f32>() / count as f32;
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (ra, rb) in a.rows().take(frames).zip(b.rows().take(frames)) {
        for (&x, &y) in ra.iter().zip(rb) {
            let dx = (x - ma) as f64;
            let dy = (y - mb) as f64;
            cov += dx * dy;
            va += dx * dx;
            vb += dy * dy;
        }
    }
    if va <= f64::EPSILON || vb <= f64::EPSILON {
        return Ok(0.0);
    }
    Ok((cov / (va.sqrt() * vb.sqrt())) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cross_correlation_matches_naive() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [0.5f32, -1.0];
        let fast = cross_correlate(&a, &b).unwrap();
        // Naive correlation: c[k] = sum_i a[i] * b[i - (k - (len_b - 1))].
        let mut naive = vec![0.0f32; a.len() + b.len() - 1];
        for (k, slot) in naive.iter_mut().enumerate() {
            let lag = k as isize - (b.len() as isize - 1);
            let mut acc = 0.0;
            for (i, &ai) in a.iter().enumerate() {
                let j = i as isize - lag;
                if j >= 0 && (j as usize) < b.len() {
                    acc += ai * b[j as usize];
                }
            }
            *slot = acc;
        }
        for (f, n) in fast.iter().zip(&naive) {
            assert!((f - n).abs() < 1e-4, "{fast:?} vs {naive:?}");
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(cross_correlate(&[], &[1.0]).is_err());
        assert!(cross_correlate(&[1.0], &[]).is_err());
    }

    #[test]
    fn delay_estimation_recovers_known_lag() {
        let mut rng = StdRng::seed_from_u64(11);
        let reference = gen::gaussian_noise(&mut rng, 1.0, 2_000);
        for lag in [0usize, 5, 160, 999] {
            let mut delayed = vec![0.0f32; lag];
            delayed.extend_from_slice(&reference);
            let est = estimate_delay(&reference, &delayed, 1_000).unwrap();
            assert_eq!(est, lag as isize, "lag {lag}");
        }
    }

    #[test]
    fn delay_estimation_with_noise() {
        let mut rng = StdRng::seed_from_u64(13);
        let reference = gen::chirp(50.0, 3_000.0, 1.0, 16_000, 0.3);
        let mut delayed = vec![0.0f32; 640];
        delayed.extend_from_slice(&reference);
        let noise = gen::gaussian_noise(&mut rng, 0.2, delayed.len());
        for (d, n) in delayed.iter_mut().zip(&noise) {
            *d += n;
        }
        let est = estimate_delay(&reference, &delayed, 3_200).unwrap();
        assert!((est - 640).abs() <= 2, "estimated {est}");
    }

    #[test]
    fn align_by_delay_positive_and_negative() {
        let sig = vec![1.0, 2.0, 3.0];
        assert_eq!(align_by_delay(&sig, 1), vec![2.0, 3.0]);
        assert_eq!(align_by_delay(&sig, -2), vec![0.0, 0.0, 1.0, 2.0, 3.0]);
        assert!(align_by_delay(&sig, 10).is_empty());
    }

    #[test]
    fn correlation_2d_identical_maps_is_one() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        assert!((correlation_2d(&a, &a).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn correlation_2d_truncates_to_common_frames() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let b = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![9.0, 9.0]];
        assert!((correlation_2d(&a, &b).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn correlation_2d_dimension_mismatch() {
        let a = vec![vec![1.0, 2.0]];
        let b = vec![vec![1.0, 2.0, 3.0]];
        assert!(correlation_2d(&a, &b).is_err());
    }

    #[test]
    fn correlation_2d_independent_noise_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let a: Vec<Vec<f32>> = (0..30)
            .map(|_| gen::gaussian_noise(&mut rng, 1.0, 31))
            .collect();
        let b: Vec<Vec<f32>> = (0..30)
            .map(|_| gen::gaussian_noise(&mut rng, 1.0, 31))
            .collect();
        let r = correlation_2d(&a, &b).unwrap();
        assert!(r.abs() < 0.12, "independent noise correlated at {r}");
    }

    #[test]
    fn spectrogram_correlation_matches_flattened_pearson() {
        use crate::stft::Stft;
        let mut rng = StdRng::seed_from_u64(23);
        let fs = 200u32;
        let x = gen::gaussian_noise(&mut rng, 1.0, 600);
        let y: Vec<f32> = x
            .iter()
            .zip(gen::gaussian_noise(&mut rng, 0.3, 600))
            .map(|(a, n)| a + n)
            .collect();
        let stft = Stft::vibration_default();
        for crop in [false, true] {
            let mut sa = stft.power_spectrogram(&x, fs);
            let mut sb = stft.power_spectrogram(&y, fs);
            if crop {
                sa.crop_low_frequencies(5.0);
                sb.crop_low_frequencies(5.0);
            }
            let streamed = spectrogram_correlation(&sa, &sb).unwrap();
            let ra: Vec<Vec<f32>> = sa.rows().map(|r| r.to_vec()).collect();
            let rb: Vec<Vec<f32>> = sb.rows().map(|r| r.to_vec()).collect();
            let flattened = correlation_2d(&ra, &rb).unwrap();
            assert_eq!(streamed, flattened, "crop={crop}");
            assert!(streamed > 0.5, "signal+noise should correlate: {streamed}");
        }
    }

    #[test]
    fn spectrogram_correlation_identical_is_one() {
        let spec = crate::stft::Stft::vibration_default()
            .power_spectrogram(&gen::sine(25.0, 1.0, 200, 1.0), 200);
        let r = spectrogram_correlation(&spec, &spec).unwrap();
        assert!((r - 1.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn correlation_2d_empty_is_zero() {
        let a: Vec<Vec<f32>> = Vec::new();
        let b = vec![vec![1.0]];
        assert_eq!(correlation_2d(&a, &b).unwrap(), 0.0);
    }
}
