//! Scalar spectral features of audio signals.
//!
//! These are the classic single-number descriptors (centroid, rolloff,
//! band-energy ratio, zero-crossing rate, flux) used by audio-domain
//! attack detectors — including the naive "check the high-frequency
//! energy" approach the paper's introduction evaluates and rejects.

use crate::fft;

/// Spectral centroid in Hz: the magnitude-weighted mean frequency.
/// Returns `0.0` for silence.
pub fn spectral_centroid(signal: &[f32], sample_rate: u32) -> f32 {
    let mags = fft::magnitude_spectrum(signal, 1_024);
    let n_fft = (mags.len() - 1) * 2;
    let bin_hz = sample_rate as f32 / n_fft as f32;
    let total: f32 = mags.iter().sum();
    if total <= 1e-12 {
        return 0.0;
    }
    mags.iter()
        .enumerate()
        .map(|(k, &m)| k as f32 * bin_hz * m)
        .sum::<f32>()
        / total
}

/// Spectral roll-off: the frequency below which `fraction` of the total
/// spectral energy lies. Returns `0.0` for silence.
///
/// # Panics
///
/// Panics unless `fraction` is in `(0, 1]`.
pub fn spectral_rolloff(signal: &[f32], sample_rate: u32, fraction: f32) -> f32 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    let mags = fft::magnitude_spectrum(signal, 1_024);
    let n_fft = (mags.len() - 1) * 2;
    let bin_hz = sample_rate as f32 / n_fft as f32;
    let total: f32 = mags.iter().map(|m| m * m).sum();
    if total <= 1e-12 {
        return 0.0;
    }
    let mut acc = 0.0f32;
    for (k, &m) in mags.iter().enumerate() {
        acc += m * m;
        if acc >= fraction * total {
            return k as f32 * bin_hz;
        }
    }
    (mags.len() - 1) as f32 * bin_hz
}

/// Ratio of spectral energy above `split_hz` to total energy — the
/// naive thru-barrier indicator (barriers strip high frequencies, so a
/// low ratio *suggests* an attack… except for phonemes that never had
/// high-frequency energy, which is exactly why the paper rejects this
/// detector).
pub fn high_band_energy_ratio(signal: &[f32], sample_rate: u32, split_hz: f32) -> f32 {
    let mags = fft::magnitude_spectrum(signal, 1_024);
    let n_fft = (mags.len() - 1) * 2;
    let bin_hz = sample_rate as f32 / n_fft as f32;
    let mut high = 0.0f32;
    let mut total = 0.0f32;
    for (k, &m) in mags.iter().enumerate() {
        let e = m * m;
        total += e;
        if k as f32 * bin_hz >= split_hz {
            high += e;
        }
    }
    if total <= 1e-12 {
        0.0
    } else {
        high / total
    }
}

/// Zero-crossing rate: sign changes per sample (`0..=1`).
pub fn zero_crossing_rate(signal: &[f32]) -> f32 {
    if signal.len() < 2 {
        return 0.0;
    }
    let crossings = signal
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count();
    crossings as f32 / (signal.len() - 1) as f32
}

/// Mean spectral flux between consecutive frames of `frame_len` samples:
/// the L2 distance of normalized magnitude spectra. High for noise-like
/// or transient content, low for steady tones.
pub fn spectral_flux(signal: &[f32], frame_len: usize) -> f32 {
    if frame_len == 0 || signal.len() < frame_len * 2 {
        return 0.0;
    }
    let frames: Vec<Vec<f32>> = signal
        .chunks_exact(frame_len)
        .map(|c| {
            let mags = fft::magnitude_spectrum(c, frame_len.next_power_of_two());
            let norm: f32 = mags.iter().map(|m| m * m).sum::<f32>().sqrt().max(1e-12);
            mags.into_iter().map(|m| m / norm).collect()
        })
        .collect();
    let mut flux = 0.0f32;
    for w in frames.windows(2) {
        flux += w[0]
            .iter()
            .zip(&w[1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
    }
    flux / (frames.len() - 1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn centroid_tracks_tone_frequency() {
        let lo = gen::sine(300.0, 0.5, 16_000, 0.25);
        let hi = gen::sine(3_000.0, 0.5, 16_000, 0.25);
        let c_lo = spectral_centroid(&lo, 16_000);
        let c_hi = spectral_centroid(&hi, 16_000);
        assert!((c_lo - 300.0).abs() < 150.0, "centroid {c_lo}");
        assert!(c_hi > 2_000.0, "centroid {c_hi}");
    }

    #[test]
    fn centroid_of_silence_is_zero() {
        assert_eq!(spectral_centroid(&vec![0.0; 512], 16_000), 0.0);
    }

    #[test]
    fn rolloff_bounds_tone() {
        let tone = gen::sine(1_000.0, 0.5, 16_000, 0.25);
        let r = spectral_rolloff(&tone, 16_000, 0.95);
        assert!((900.0..1_400.0).contains(&r), "rolloff {r}");
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn rolloff_rejects_bad_fraction() {
        spectral_rolloff(&[0.1; 64], 16_000, 0.0);
    }

    #[test]
    fn high_band_ratio_separates_filtered_signal() {
        let mut rng = StdRng::seed_from_u64(1);
        let wide = gen::gaussian_noise(&mut rng, 0.2, 8_000);
        let low =
            crate::fft::apply_frequency_response(
                &wide,
                16_000,
                |f| {
                    if f < 500.0 {
                        1.0
                    } else {
                        0.0
                    }
                },
            );
        let r_wide = high_band_energy_ratio(&wide, 16_000, 500.0);
        let r_low = high_band_energy_ratio(&low, 16_000, 500.0);
        assert!(r_wide > 0.8, "wide {r_wide}");
        assert!(r_low < 0.1, "low {r_low}");
    }

    #[test]
    fn zcr_orders_tone_frequencies() {
        let lo = gen::sine(100.0, 0.5, 16_000, 0.25);
        let hi = gen::sine(2_000.0, 0.5, 16_000, 0.25);
        assert!(zero_crossing_rate(&hi) > 5.0 * zero_crossing_rate(&lo));
        assert_eq!(zero_crossing_rate(&[1.0]), 0.0);
    }

    #[test]
    fn flux_is_low_for_steady_tone_high_for_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let tone = gen::sine(500.0, 0.5, 16_000, 0.5);
        let noise = gen::gaussian_noise(&mut rng, 0.5, 8_000);
        let f_tone = spectral_flux(&tone, 512);
        let f_noise = spectral_flux(&noise, 512);
        assert!(f_noise > 3.0 * f_tone, "noise {f_noise} tone {f_tone}");
    }

    #[test]
    fn flux_short_input_is_zero() {
        assert_eq!(spectral_flux(&[0.1; 100], 512), 0.0);
    }
}
