//! Descriptive statistics used across the workspace.
//!
//! The third-quartile estimator here is the one the paper's
//! barrier-effect-sensitive phoneme selection relies on (Sec. V-A:
//! "the third quartile Q3(p, f) FFT magnitude").

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population standard deviation. Returns `0.0` for slices shorter than 2.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Root-mean-square amplitude. Returns `0.0` for an empty slice.
pub fn rms(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Maximum absolute value. Returns `0.0` for an empty slice.
pub fn peak(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()))
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
///
/// Uses the same convention as NumPy's default (`linear`): the value at
/// fractional rank `p/100 * (n-1)`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// let q3 = thrubarrier_dsp::stats::percentile(&[1.0, 2.0, 3.0, 4.0], 75.0);
/// assert!((q3 - 3.25).abs() < 1e-6);
/// ```
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Third quartile (75th percentile) — the statistic in the paper's
/// phoneme-selection criteria (Eqs. 2–3).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn third_quartile(xs: &[f32]) -> f32 {
    percentile(xs, 75.0)
}

/// Median (50th percentile).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f32]) -> f32 {
    percentile(xs, 50.0)
}

/// Index of the maximum element (first occurrence). Returns `None` for an
/// empty slice.
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence). Returns `None` for an
/// empty slice.
pub fn argmin(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, b)) if x >= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `0.0` when either input has zero variance (the convention used
/// by the attack detector: a constant feature map carries no evidence).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "pearson inputs must match in length");
    if a.is_empty() {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let dx = (x - ma) as f64;
        let dy = (y - mb) as f64;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= f64::EPSILON || vb <= f64::EPSILON {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())) as f32
}

/// Converts a linear amplitude ratio to decibels (`20 log10`), clamping the
/// ratio to `1e-12` to avoid `-inf`.
pub fn amplitude_to_db(ratio: f32) -> f32 {
    20.0 * ratio.max(1e-12).log10()
}

/// Converts decibels to a linear amplitude ratio.
pub fn db_to_amplitude(db: f32) -> f32 {
    10f32.powf(db / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rms_of_unit_square_wave_is_one() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        assert!((rms(&xs) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quartiles_match_numpy_convention() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((third_quartile(&xs) - 3.25).abs() < 1e-6);
        assert!((median(&xs) - 2.5).abs() < 1e-6);
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-6);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut b = a;
        b.reverse();
        assert_eq!(percentile(&a, 75.0), percentile(&b, 75.0));
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn argmax_argmin() {
        let xs = [0.5, -1.0, 3.0, 3.0, 2.0];
        assert_eq!(argmax(&xs), Some(2));
        assert_eq!(argmin(&xs), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn pearson_of_identical_signals_is_one() {
        let xs: Vec<f32> = (0..50).map(|i| (i as f32 * 0.3).sin()).collect();
        assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn pearson_of_negated_signal_is_minus_one() {
        let xs: Vec<f32> = (0..50).map(|i| (i as f32 * 0.3).sin()).collect();
        let neg: Vec<f32> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        let a = [1.0; 10];
        let b: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn db_roundtrip() {
        for db in [-40.0, -6.0, 0.0, 12.0] {
            let amp = db_to_amplitude(db);
            assert!((amplitude_to_db(amp) - db).abs() < 1e-4);
        }
    }
}
