//! Sample-rate conversion — with and without anti-aliasing.
//!
//! The deliberate-aliasing path ([`decimate_aliased`]) is central to this
//! workspace: commercial wearable accelerometers sample at ~200 Hz with no
//! acoustic anti-aliasing front-end, so audio energy above 100 Hz folds
//! into the 0–100 Hz band (paper Sec. IV-B, "Ambiguous Signal Conversion
//! in Cross-domain Sensing"). The defense *relies* on that fold-down to
//! see high-frequency speech energy in the vibration domain.

use crate::error::DspError;
use crate::filter;

/// Decimates by an integer factor **without anti-aliasing**: keeps every
/// `factor`-th sample. High-frequency content aliases into the output
/// band, exactly like an ADC sampling a wideband vibration.
///
/// # Errors
///
/// Returns [`DspError::InvalidFilterParameter`] if `factor` is zero.
///
/// # Example
///
/// ```
/// use thrubarrier_dsp::{gen, resample, stats};
///
/// # fn main() -> Result<(), thrubarrier_dsp::DspError> {
/// // A 1.55 kHz tone sampled at 16 kHz, decimated x80 to 200 Hz, aliases
/// // to |1550 - 8*200| = 50 Hz: energy survives instead of vanishing.
/// let tone = gen::sine(1_550.0, 1.0, 16_000, 1.0);
/// let vib = resample::decimate_aliased(&tone, 80)?;
/// assert!(stats::rms(&vib) > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn decimate_aliased(signal: &[f32], factor: usize) -> Result<Vec<f32>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidFilterParameter(
            "decimation factor must be >= 1".into(),
        ));
    }
    Ok(signal.iter().step_by(factor).copied().collect())
}

/// Decimates by an integer factor **with anti-aliasing**: low-pass filters
/// at 45% of the output Nyquist frequency before keeping every
/// `factor`-th sample.
///
/// # Errors
///
/// Returns [`DspError::InvalidFilterParameter`] if `factor` is zero.
pub fn decimate(signal: &[f32], factor: usize, sample_rate: u32) -> Result<Vec<f32>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidFilterParameter(
            "decimation factor must be >= 1".into(),
        ));
    }
    if factor == 1 {
        return Ok(signal.to_vec());
    }
    let out_rate = sample_rate as f32 / factor as f32;
    let cutoff = 0.45 * out_rate / 2.0 * 2.0; // 45% of output Nyquist
    let taps = (8 * factor + 1).min(511);
    let h = filter::fir_lowpass(taps, cutoff, sample_rate as f32)?;
    let filtered = filter::fir_filter(signal, &h);
    Ok(filtered.iter().step_by(factor).copied().collect())
}

/// Decimates by an integer factor with **boxcar** anti-aliasing: each
/// output sample is the mean of one length-`factor` input block (the
/// final partial block averages over its actual length). `O(N)` with no
/// filter design, which is why the coarse pass of the correlation
/// engine's decimate-then-refine lag search uses it: a moving average's
/// first spectral null sits at `sample_rate / factor`, enough aliasing
/// suppression for a correlation *peak search* (the subsequent full-rate
/// refinement is exact, so coarse-pass spectral leakage cannot bias the
/// returned lag) — not for signal-path resampling, which should go
/// through [`decimate`].
///
/// Block boundaries start at sample 0, so two signals decimated with the
/// same factor keep their relative timing to within one output sample.
///
/// # Errors
///
/// Returns [`DspError::InvalidFilterParameter`] if `factor` is zero.
pub fn decimate_boxcar(signal: &[f32], factor: usize) -> Result<Vec<f32>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidFilterParameter(
            "decimation factor must be >= 1".into(),
        ));
    }
    if factor == 1 {
        return Ok(signal.to_vec());
    }
    Ok(signal
        .chunks(factor)
        .map(|block| block.iter().sum::<f32>() / block.len() as f32)
        .collect())
}

/// Linear-interpolation resampling to an arbitrary target rate. Used for
/// aligning recordings from devices with slightly different clocks.
///
/// # Errors
///
/// Returns [`DspError::InvalidFilterParameter`] if either rate is zero.
pub fn resample_linear(signal: &[f32], from_rate: u32, to_rate: u32) -> Result<Vec<f32>, DspError> {
    if from_rate == 0 || to_rate == 0 {
        return Err(DspError::InvalidFilterParameter(
            "sample rates must be non-zero".into(),
        ));
    }
    if signal.is_empty() {
        return Ok(Vec::new());
    }
    if from_rate == to_rate {
        return Ok(signal.to_vec());
    }
    let ratio = from_rate as f64 / to_rate as f64;
    let out_len = ((signal.len() as f64) / ratio).floor() as usize;
    let mut out = Vec::with_capacity(out_len);
    for i in 0..out_len {
        let pos = i as f64 * ratio;
        let lo = pos.floor() as usize;
        let frac = (pos - lo as f64) as f32;
        let a = signal[lo.min(signal.len() - 1)];
        let b = signal[(lo + 1).min(signal.len() - 1)];
        out.push(a * (1.0 - frac) + b * frac);
    }
    Ok(out)
}

/// The frequency (Hz) that `f_in` aliases to when sampled at
/// `sample_rate` Hz without anti-aliasing.
///
/// # Example
///
/// ```
/// // 1550 Hz sampled at 200 Hz folds to 50 Hz.
/// assert_eq!(thrubarrier_dsp::resample::alias_frequency(1_550.0, 200.0), 50.0);
/// ```
pub fn alias_frequency(f_in: f32, sample_rate: f32) -> f32 {
    let f = f_in.rem_euclid(sample_rate);
    if f > sample_rate / 2.0 {
        sample_rate - f
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fft, gen, stats};

    #[test]
    fn aliased_decimation_folds_tone_to_expected_bin() {
        // 1550 Hz @ 16 kHz -> decimate x80 -> 200 Hz; expect 50 Hz.
        let tone = gen::sine(1_550.0, 1.0, 16_000, 2.0);
        let vib = decimate_aliased(&tone, 80).unwrap();
        assert_eq!(vib.len(), 400);
        let mags = fft::magnitude_spectrum(&vib, 512);
        let peak = stats::argmax(&mags).unwrap();
        let hz = peak as f32 * 200.0 / 512.0;
        assert!((hz - 50.0).abs() < 2.0, "aliased peak at {hz} Hz");
    }

    #[test]
    fn antialiased_decimation_removes_high_tone() {
        let tone = gen::sine(1_550.0, 1.0, 16_000, 2.0);
        let vib = decimate(&tone, 80, 16_000).unwrap();
        assert!(
            stats::rms(&vib) < 0.05,
            "anti-aliased output should be near-silent: {}",
            stats::rms(&vib)
        );
    }

    #[test]
    fn antialiased_decimation_keeps_in_band_tone() {
        let tone = gen::sine(30.0, 1.0, 16_000, 2.0);
        let vib = decimate(&tone, 80, 16_000).unwrap();
        assert!(stats::rms(&vib) > 0.5);
    }

    #[test]
    fn decimate_by_one_is_identity() {
        let sig = vec![1.0, 2.0, 3.0];
        assert_eq!(decimate(&sig, 1, 100).unwrap(), sig);
        assert_eq!(decimate_aliased(&sig, 1).unwrap(), sig);
        assert_eq!(decimate_boxcar(&sig, 1).unwrap(), sig);
    }

    #[test]
    fn zero_factor_is_rejected() {
        assert!(decimate_aliased(&[1.0], 0).is_err());
        assert!(decimate(&[1.0], 0, 100).is_err());
        assert!(decimate_boxcar(&[1.0], 0).is_err());
    }

    #[test]
    fn boxcar_decimation_averages_blocks() {
        let sig = vec![1.0, 3.0, 5.0, 7.0, 10.0];
        // Two full blocks of 2 plus a partial block of 1.
        assert_eq!(decimate_boxcar(&sig, 2).unwrap(), vec![2.0, 6.0, 10.0]);
    }

    #[test]
    fn boxcar_decimation_attenuates_above_output_nyquist() {
        // A tone near the boxcar's first null (fs / factor) should be
        // strongly attenuated; an in-band tone should pass.
        let hi = gen::sine(2_000.0, 1.0, 16_000, 1.0);
        let lo = gen::sine(60.0, 1.0, 16_000, 1.0);
        let hi_out = decimate_boxcar(&hi, 8).unwrap();
        let lo_out = decimate_boxcar(&lo, 8).unwrap();
        assert!(stats::rms(&hi_out) < 0.1, "rms {}", stats::rms(&hi_out));
        assert!(stats::rms(&lo_out) > 0.6, "rms {}", stats::rms(&lo_out));
    }

    #[test]
    fn linear_resample_preserves_tone_frequency() {
        let tone = gen::sine(50.0, 1.0, 16_000, 1.0);
        let out = resample_linear(&tone, 16_000, 8_000).unwrap();
        assert_eq!(out.len(), 8_000);
        let mags = fft::magnitude_spectrum(&out, 0);
        let peak = stats::argmax(&mags).unwrap();
        let hz = peak as f32 * 8_000.0 / 8_192.0;
        assert!((hz - 50.0).abs() < 3.0, "peak at {hz}");
    }

    #[test]
    fn linear_resample_same_rate_is_identity() {
        let sig = vec![0.5, -0.5];
        assert_eq!(resample_linear(&sig, 100, 100).unwrap(), sig);
    }

    #[test]
    fn alias_frequency_cases() {
        assert_eq!(alias_frequency(50.0, 200.0), 50.0);
        assert_eq!(alias_frequency(150.0, 200.0), 50.0);
        assert_eq!(alias_frequency(200.0, 200.0), 0.0);
        assert_eq!(alias_frequency(1_550.0, 200.0), 50.0);
        assert_eq!(alias_frequency(260.0, 200.0), 60.0);
    }
}
