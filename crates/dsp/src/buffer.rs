//! Audio sample buffer carrying its sample rate.

use crate::stats;

/// A mono audio (or vibration) signal together with its sample rate.
///
/// All recordings and intermediate signals in the workspace are carried as
/// `AudioBuffer`s so that sample-rate mismatches are caught explicitly
/// instead of silently producing wrong spectra.
///
/// # Example
///
/// ```
/// use thrubarrier_dsp::AudioBuffer;
///
/// let buf = AudioBuffer::new(vec![0.0, 0.5, -0.5, 0.0], 16_000);
/// assert_eq!(buf.duration(), 4.0 / 16_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AudioBuffer {
    samples: Vec<f32>,
    sample_rate: u32,
}

impl AudioBuffer {
    /// Creates a buffer from samples and a sample rate.
    pub fn new(samples: Vec<f32>, sample_rate: u32) -> Self {
        AudioBuffer {
            samples,
            sample_rate,
        }
    }

    /// Creates an empty buffer at the given sample rate.
    pub fn empty(sample_rate: u32) -> Self {
        AudioBuffer {
            samples: Vec::new(),
            sample_rate,
        }
    }

    /// The samples.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Mutable access to the samples.
    pub fn samples_mut(&mut self) -> &mut Vec<f32> {
        &mut self.samples
    }

    /// Consumes the buffer and returns the sample vector.
    pub fn into_samples(self) -> Vec<f32> {
        self.samples
    }

    /// The sample rate in Hz.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f32 {
        self.samples.len() as f32 / self.sample_rate as f32
    }

    /// Root-mean-square amplitude.
    pub fn rms(&self) -> f32 {
        stats::rms(&self.samples)
    }

    /// Peak absolute amplitude.
    pub fn peak(&self) -> f32 {
        stats::peak(&self.samples)
    }

    /// Multiplies every sample by `gain`.
    pub fn scale(&mut self, gain: f32) {
        for s in &mut self.samples {
            *s *= gain;
        }
    }

    /// Returns a copy scaled by `gain`.
    pub fn scaled(&self, gain: f32) -> Self {
        let mut out = self.clone();
        out.scale(gain);
        out
    }

    /// Appends another buffer.
    ///
    /// # Panics
    ///
    /// Panics if the sample rates differ — concatenating signals at
    /// different rates is always a bug.
    pub fn append(&mut self, other: &AudioBuffer) {
        assert_eq!(
            self.sample_rate, other.sample_rate,
            "cannot append buffers with different sample rates"
        );
        self.samples.extend_from_slice(&other.samples);
    }

    /// Mixes (adds) another buffer into this one starting at
    /// `offset_samples`, extending this buffer if needed.
    ///
    /// # Panics
    ///
    /// Panics if the sample rates differ.
    pub fn mix_at(&mut self, other: &AudioBuffer, offset_samples: usize) {
        assert_eq!(
            self.sample_rate, other.sample_rate,
            "cannot mix buffers with different sample rates"
        );
        let needed = offset_samples + other.samples.len();
        if needed > self.samples.len() {
            self.samples.resize(needed, 0.0);
        }
        for (i, &s) in other.samples.iter().enumerate() {
            self.samples[offset_samples + i] += s;
        }
    }

    /// Returns the sub-buffer `[start, end)` (clamped to the signal
    /// length).
    pub fn slice(&self, start: usize, end: usize) -> AudioBuffer {
        let end = end.min(self.samples.len());
        let start = start.min(end);
        AudioBuffer::new(self.samples[start..end].to_vec(), self.sample_rate)
    }

    /// Normalizes the peak amplitude to `target` (no-op on silence).
    pub fn normalize_peak(&mut self, target: f32) {
        let p = self.peak();
        if p > 0.0 {
            self.scale(target / p);
        }
    }
}

impl AsRef<[f32]> for AudioBuffer {
    fn as_ref(&self) -> &[f32] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_len() {
        let b = AudioBuffer::new(vec![0.0; 8_000], 16_000);
        assert_eq!(b.len(), 8_000);
        assert!((b.duration() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn scale_and_peak() {
        let mut b = AudioBuffer::new(vec![0.25, -0.5], 100);
        b.scale(2.0);
        assert_eq!(b.peak(), 1.0);
    }

    #[test]
    fn append_concatenates() {
        let mut a = AudioBuffer::new(vec![1.0], 100);
        a.append(&AudioBuffer::new(vec![2.0, 3.0], 100));
        assert_eq!(a.samples(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "different sample rates")]
    fn append_rejects_rate_mismatch() {
        let mut a = AudioBuffer::new(vec![1.0], 100);
        a.append(&AudioBuffer::new(vec![2.0], 200));
    }

    #[test]
    fn mix_at_with_extension() {
        let mut a = AudioBuffer::new(vec![1.0, 1.0], 100);
        a.mix_at(&AudioBuffer::new(vec![0.5, 0.5], 100), 1);
        assert_eq!(a.samples(), &[1.0, 1.5, 0.5]);
    }

    #[test]
    fn slice_clamps_to_length() {
        let a = AudioBuffer::new(vec![1.0, 2.0, 3.0], 100);
        assert_eq!(a.slice(1, 99).samples(), &[2.0, 3.0]);
        assert!(a.slice(5, 9).is_empty());
    }

    #[test]
    fn normalize_peak_on_silence_is_noop() {
        let mut a = AudioBuffer::new(vec![0.0; 4], 100);
        a.normalize_peak(1.0);
        assert_eq!(a.peak(), 0.0);
    }

    #[test]
    fn normalize_peak_hits_target() {
        let mut a = AudioBuffer::new(vec![0.1, -0.4], 100);
        a.normalize_peak(0.8);
        assert!((a.peak() - 0.8).abs() < 1e-6);
    }
}
