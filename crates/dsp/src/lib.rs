//! Signal-processing substrate for the `thrubarrier` workspace.
//!
//! This crate provides every digital-signal-processing primitive the
//! reproduction of *"Defending against Thru-barrier Stealthy Voice Attacks
//! via Cross-Domain Sensing on Phoneme Sounds"* (ICDCS 2022) relies on,
//! implemented from scratch:
//!
//! * complex arithmetic and a planned radix-2 [`fft`] with a thread-local
//!   plan cache and a packed real-input fast path,
//! * cached frequency-[`response`] curves shared by every simulated
//!   transducer and barrier,
//! * [`window`] functions and the short-time Fourier transform ([`stft`]),
//! * mel filterbanks and MFCC extraction ([`mel`]),
//! * IIR biquad and windowed-sinc FIR [`filter`]s,
//! * sample-rate conversion with *and without* anti-aliasing ([`resample`] —
//!   the "without" path models the aliasing behaviour of wearable
//!   accelerometers),
//! * a cross-correlation engine with size-selected time-domain / FFT /
//!   overlap-save paths, bounded-lag coarse-to-fine delay estimation,
//!   and the 2-D Pearson correlation used by the paper's attack
//!   detector ([`correlate`]),
//! * descriptive statistics including the third-quartile estimator used by
//!   the phoneme-selection criteria ([`stats`]),
//! * deterministic signal generators (tones, chirps, Gaussian noise)
//!   ([`gen`]).
//!
//! # Example
//!
//! ```
//! use thrubarrier_dsp::{gen, stft::Stft, window::WindowKind};
//!
//! # fn main() -> Result<(), thrubarrier_dsp::DspError> {
//! let tone = gen::sine(1_000.0, 0.5, 16_000, 0.25);
//! let stft = Stft::new(400, 160, WindowKind::Hann)?;
//! let spec = stft.power_spectrogram(&tone, 16_000);
//! assert!(spec.frames() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod complex;
pub mod correlate;
pub mod error;
pub mod features;
pub mod fft;
pub mod filter;
pub mod gen;
pub mod mel;
pub mod resample;
pub mod response;
pub mod stats;
pub mod stft;
pub mod wav;
pub mod window;

pub use buffer::AudioBuffer;
pub use complex::Complex;
pub use error::DspError;
pub use stft::{Spectrogram, Stft};
