//! Deterministic test-signal and noise generators.

use rand::Rng;

/// Generates a sine tone.
///
/// * `freq` — frequency in Hz
/// * `amplitude` — peak amplitude
/// * `sample_rate` — samples per second
/// * `duration` — seconds
///
/// # Example
///
/// ```
/// let tone = thrubarrier_dsp::gen::sine(440.0, 1.0, 16_000, 0.5);
/// assert_eq!(tone.len(), 8_000);
/// ```
pub fn sine(freq: f32, amplitude: f32, sample_rate: u32, duration: f32) -> Vec<f32> {
    let n = (duration * sample_rate as f32).round() as usize;
    let w = std::f32::consts::TAU * freq / sample_rate as f32;
    (0..n).map(|i| amplitude * (w * i as f32).sin()).collect()
}

/// Generates a linear chirp sweeping from `f0` to `f1` Hz over `duration`
/// seconds.
///
/// This is the stimulus used to characterize the wearable accelerometer's
/// frequency response (paper Fig. 7: a 500–2500 Hz chirp).
pub fn chirp(f0: f32, f1: f32, amplitude: f32, sample_rate: u32, duration: f32) -> Vec<f32> {
    let n = (duration * sample_rate as f32).round() as usize;
    let fs = sample_rate as f32;
    let k = (f1 - f0) / duration;
    (0..n)
        .map(|i| {
            let t = i as f32 / fs;
            let phase = std::f32::consts::TAU * (f0 * t + 0.5 * k * t * t);
            amplitude * phase.sin()
        })
        .collect()
}

/// Generates zero-mean Gaussian white noise with the given standard
/// deviation, using the Box–Muller transform over the supplied RNG.
pub fn gaussian_noise<R: Rng + ?Sized>(rng: &mut R, std: f32, n: usize) -> Vec<f32> {
    (0..n).map(|_| std * standard_normal(rng)).collect()
}

/// Draws one sample from the standard normal distribution via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid log(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Adds zero-mean Gaussian noise of standard deviation `std` to
/// `signal` in place: one sweep, one [`standard_normal`] draw per
/// sample, no temporary noise buffer. The draw sequence is identical
/// to the open-coded `*v += std * standard_normal(rng)` loops this
/// replaces, so seeded streams are unaffected by the refactor.
pub fn add_gaussian_noise<R: Rng + ?Sized>(signal: &mut [f32], std: f32, rng: &mut R) {
    for v in signal.iter_mut() {
        *v += std * standard_normal(rng);
    }
}

/// [`add_gaussian_noise`] fused with a full-scale clamp to `[-1, 1]`:
/// one sweep instead of a noise pass followed by a clamp pass. Each
/// sample's draw lands before its clamp and samples are independent,
/// so the result — and the RNG stream — are identical to the two-pass
/// form this replaces.
pub fn add_gaussian_noise_clamped<R: Rng + ?Sized>(signal: &mut [f32], std: f32, rng: &mut R) {
    for v in signal.iter_mut() {
        *v = (*v + std * standard_normal(rng)).clamp(-1.0, 1.0);
    }
}

/// Returns `n` zeros — explicit silence, clearer at call sites than
/// `vec![0.0; n]`.
pub fn silence(n: usize) -> Vec<f32> {
    vec![0.0; n]
}

/// Adds `b` into `a` element-wise, extending `a` if `b` is longer.
pub fn mix_into(a: &mut Vec<f32>, b: &[f32]) {
    if b.len() > a.len() {
        a.resize(b.len(), 0.0);
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sine_has_expected_rms() {
        let s = sine(100.0, 2.0, 8_000, 1.0);
        // RMS of a sine of amplitude A is A/sqrt(2).
        assert!((stats::rms(&s) - 2.0 / 2f32.sqrt()).abs() < 0.01);
    }

    #[test]
    fn chirp_instantaneous_frequency_increases() {
        let fs = 16_000;
        let c = chirp(500.0, 2_500.0, 1.0, fs, 1.0);
        // Count zero crossings in first and last 10th — later section must
        // oscillate faster.
        let crossings = |xs: &[f32]| {
            xs.windows(2)
                .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
                .count()
        };
        let n = c.len();
        let early = crossings(&c[..n / 10]);
        let late = crossings(&c[n - n / 10..]);
        assert!(late > early * 2, "early={early} late={late}");
    }

    #[test]
    fn gaussian_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let noise = gaussian_noise(&mut rng, 0.5, 50_000);
        assert!(stats::mean(&noise).abs() < 0.02);
        assert!((stats::std_dev(&noise) - 0.5).abs() < 0.02);
    }

    #[test]
    fn gaussian_noise_is_deterministic_per_seed() {
        let a = gaussian_noise(&mut StdRng::seed_from_u64(3), 1.0, 16);
        let b = gaussian_noise(&mut StdRng::seed_from_u64(3), 1.0, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_into_extends_and_adds() {
        let mut a = vec![1.0, 1.0];
        mix_into(&mut a, &[0.5, 0.5, 0.5]);
        assert_eq!(a, vec![1.5, 1.5, 0.5]);
    }

    #[test]
    fn silence_is_zeros() {
        assert!(silence(5).iter().all(|&x| x == 0.0));
    }
}
