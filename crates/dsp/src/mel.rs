//! Mel filterbank and MFCC extraction.
//!
//! The paper's phoneme detector uses 14th-order MFCCs computed from a
//! 40-channel mel filterbank restricted to 0–900 Hz — deliberately
//! low-frequency so that phonemes remain detectable in attack sounds whose
//! high frequencies were stripped by the barrier (Sec. V-B).

use crate::error::DspError;
use crate::fft;
use crate::window::WindowKind;

/// Converts frequency in Hz to mels (O'Shaughnessy formula).
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mels to frequency in Hz.
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10f32.powf(mel / 2595.0) - 1.0)
}

/// A triangular mel filterbank over FFT bins.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    /// `n_filters x n_bins` triangular weights.
    weights: Vec<Vec<f32>>,
    n_fft: usize,
}

impl MelFilterbank {
    /// Builds `n_filters` triangular filters spanning `f_min..f_max` Hz
    /// for FFT size `n_fft` at `sample_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidMelConfig`] if the band is empty, the
    /// filter count is zero, or `f_max` exceeds Nyquist.
    pub fn new(
        n_filters: usize,
        n_fft: usize,
        sample_rate: u32,
        f_min: f32,
        f_max: f32,
    ) -> Result<Self, DspError> {
        if n_filters == 0 {
            return Err(DspError::InvalidMelConfig("zero filters".into()));
        }
        if !(f_min >= 0.0 && f_max > f_min) {
            return Err(DspError::InvalidMelConfig(format!(
                "invalid band {f_min}..{f_max} Hz"
            )));
        }
        if f_max > sample_rate as f32 / 2.0 {
            return Err(DspError::InvalidMelConfig(format!(
                "f_max {f_max} above nyquist {}",
                sample_rate as f32 / 2.0
            )));
        }
        let n_bins = n_fft / 2 + 1;
        let mel_lo = hz_to_mel(f_min);
        let mel_hi = hz_to_mel(f_max);
        // n_filters + 2 edge points, evenly spaced in mel.
        let edges_hz: Vec<f32> = (0..n_filters + 2)
            .map(|i| mel_to_hz(mel_lo + (mel_hi - mel_lo) * i as f32 / (n_filters + 1) as f32))
            .collect();
        let bin_hz = sample_rate as f32 / n_fft as f32;
        let mut weights = Vec::with_capacity(n_filters);
        for m in 0..n_filters {
            let (lo, center, hi) = (edges_hz[m], edges_hz[m + 1], edges_hz[m + 2]);
            let mut w = vec![0.0f32; n_bins];
            for (k, slot) in w.iter_mut().enumerate() {
                let f = k as f32 * bin_hz;
                if f > lo && f < hi {
                    *slot = if f <= center {
                        (f - lo) / (center - lo).max(f32::EPSILON)
                    } else {
                        (hi - f) / (hi - center).max(f32::EPSILON)
                    };
                }
            }
            weights.push(w);
        }
        Ok(MelFilterbank { weights, n_fft })
    }

    /// Number of filters.
    pub fn n_filters(&self) -> usize {
        self.weights.len()
    }

    /// Applies the filterbank to a power spectrum (`n_fft/2 + 1` bins),
    /// returning per-filter energies.
    ///
    /// # Panics
    ///
    /// Panics if `power.len()` does not match the configured FFT size.
    pub fn apply(&self, power: &[f32]) -> Vec<f32> {
        assert_eq!(
            power.len(),
            self.n_fft / 2 + 1,
            "power spectrum length must match filterbank fft size"
        );
        self.weights
            .iter()
            .map(|w| w.iter().zip(power).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Type-II discrete cosine transform of `input`, returning the first
/// `n_out` coefficients (orthonormal scaling).
pub fn dct_ii(input: &[f32], n_out: usize) -> Vec<f32> {
    let n = input.len();
    if n == 0 {
        return vec![0.0; n_out];
    }
    let norm0 = (1.0 / n as f32).sqrt();
    let norm = (2.0 / n as f32).sqrt();
    (0..n_out)
        .map(|k| {
            let sum: f32 = input
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    x * (std::f32::consts::PI * (i as f32 + 0.5) * k as f32 / n as f32).cos()
                })
                .sum();
            sum * if k == 0 { norm0 } else { norm }
        })
        .collect()
}

/// MFCC front-end configuration.
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    filterbank: MelFilterbank,
    frame_len: usize,
    hop: usize,
    n_coeffs: usize,
    n_fft: usize,
    sample_rate: u32,
}

impl MfccExtractor {
    /// Creates an MFCC extractor.
    ///
    /// * `frame_len` / `hop` — analysis frame and hop in samples
    /// * `n_filters` — mel filterbank channels
    /// * `n_coeffs` — cepstral coefficients kept (including C0)
    /// * `f_min..f_max` — filterbank band in Hz
    ///
    /// # Errors
    ///
    /// Returns an error if the frame configuration or the mel band is
    /// invalid, or `n_coeffs > n_filters`.
    pub fn new(
        sample_rate: u32,
        frame_len: usize,
        hop: usize,
        n_filters: usize,
        n_coeffs: usize,
        f_min: f32,
        f_max: f32,
    ) -> Result<Self, DspError> {
        if frame_len == 0 || hop == 0 {
            return Err(DspError::InvalidFrameConfig {
                window: frame_len,
                hop,
            });
        }
        if n_coeffs > n_filters {
            return Err(DspError::InvalidMelConfig(format!(
                "n_coeffs {n_coeffs} > n_filters {n_filters}"
            )));
        }
        let n_fft = fft::next_pow2(frame_len);
        let filterbank = MelFilterbank::new(n_filters, n_fft, sample_rate, f_min, f_max)?;
        Ok(MfccExtractor {
            filterbank,
            frame_len,
            hop,
            n_coeffs,
            n_fft,
            sample_rate,
        })
    }

    /// The paper's configuration: 16 kHz input, 25 ms frames (400
    /// samples), 10 ms hop (160 samples), 40 filters over 0–900 Hz,
    /// 14 coefficients.
    pub fn paper_default() -> Self {
        MfccExtractor::new(16_000, 400, 160, 40, 14, 0.0, 900.0).expect("static config is valid")
    }

    /// Number of coefficients per frame.
    pub fn n_coeffs(&self) -> usize {
        self.n_coeffs
    }

    /// Hop size in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Frame length in samples.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Sample rate this extractor expects.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Number of frames produced for a signal of `n` samples.
    pub fn frame_count(&self, n: usize) -> usize {
        if n < self.frame_len {
            usize::from(n > 0)
        } else {
            (n - self.frame_len) / self.hop + 1
        }
    }

    /// Extracts MFCCs: one `n_coeffs`-vector per frame.
    pub fn extract(&self, signal: &[f32]) -> Vec<Vec<f32>> {
        let _span = thrubarrier_obs::span!("dsp.mfcc");
        let frames = self.frame_count(signal.len());
        let window = WindowKind::Hamming.coefficients(self.frame_len);
        let half = self.n_fft / 2 + 1;
        let mut out = Vec::with_capacity(frames);
        // Per-frame buffers are hoisted out of the loop; the FFT itself
        // runs on the cached plan's packed real-input path.
        let mut frame = vec![0.0f32; self.frame_len];
        let mut spec = Vec::with_capacity(half);
        let mut power = vec![0.0f32; half];
        for fi in 0..frames {
            let start = fi * self.hop;
            for (i, (slot, &w)) in frame.iter_mut().zip(&window).enumerate() {
                *slot = signal.get(start + i).map_or(0.0, |&x| x * w);
            }
            fft::half_spectrum_into(&frame, self.n_fft, &mut spec);
            for (p, c) in power.iter_mut().zip(&spec) {
                *p = c.norm_sq();
            }
            let energies = self.filterbank.apply(&power);
            let log_e: Vec<f32> = energies.iter().map(|&e| (e + 1e-10).ln()).collect();
            out.push(dct_ii(&log_e, self.n_coeffs));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn mel_scale_roundtrip() {
        for hz in [0.0, 100.0, 440.0, 900.0, 4_000.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 0.5);
        }
    }

    #[test]
    fn mel_scale_is_monotonic() {
        let mut prev = -1.0;
        for i in 0..100 {
            let m = hz_to_mel(i as f32 * 80.0);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn filterbank_rejects_bad_configs() {
        assert!(MelFilterbank::new(0, 512, 16_000, 0.0, 900.0).is_err());
        assert!(MelFilterbank::new(10, 512, 16_000, 900.0, 100.0).is_err());
        assert!(MelFilterbank::new(10, 512, 16_000, 0.0, 9_000.0).is_err());
    }

    #[test]
    fn filterbank_responds_to_in_band_tone() {
        let fb = MelFilterbank::new(40, 512, 16_000, 0.0, 900.0).unwrap();
        let tone = gen::sine(450.0, 1.0, 16_000, 0.032); // 512 samples
        let spec = fft::fft_padded(&tone, 512);
        let power: Vec<f32> = spec[..257].iter().map(|c| c.norm_sq()).collect();
        let energies = fb.apply(&power);
        assert!(energies.iter().cloned().fold(0.0f32, f32::max) > 0.0);
    }

    #[test]
    fn dct_of_constant_is_dc_only() {
        let out = dct_ii(&[1.0; 16], 4);
        assert!(out[0] > 0.0);
        for &c in &out[1..] {
            assert!(c.abs() < 1e-5);
        }
    }

    #[test]
    fn dct_empty_input_yields_zeros() {
        assert_eq!(dct_ii(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn paper_default_shapes() {
        let m = MfccExtractor::paper_default();
        assert_eq!(m.n_coeffs(), 14);
        // 1 second at 16 kHz with 25ms/10ms framing -> 98 frames.
        assert_eq!(m.frame_count(16_000), 98);
        let sig = gen::sine(300.0, 0.5, 16_000, 0.1);
        let feats = m.extract(&sig);
        assert_eq!(feats.len(), m.frame_count(sig.len()));
        assert!(feats.iter().all(|f| f.len() == 14));
    }

    #[test]
    fn mfcc_distinguishes_tone_from_noise() {
        use rand::{rngs::StdRng, SeedableRng};
        let m = MfccExtractor::paper_default();
        let tone = gen::sine(300.0, 0.5, 16_000, 0.1);
        let noise = gen::gaussian_noise(&mut StdRng::seed_from_u64(1), 0.5, 1_600);
        let ft = m.extract(&tone);
        let fe = m.extract(&noise);
        // Average feature distance between classes should be clearly
        // non-zero.
        let d: f32 = ft[2].iter().zip(&fe[2]).map(|(a, b)| (a - b).abs()).sum();
        assert!(d > 1.0, "distance {d}");
    }

    #[test]
    fn extractor_rejects_more_coeffs_than_filters() {
        assert!(MfccExtractor::new(16_000, 400, 160, 10, 14, 0.0, 900.0).is_err());
    }
}
