//! Short-time Fourier transform and spectrogram representation.
//!
//! The paper derives vibration-domain features as the squared-magnitude
//! STFT with a 64-sample window / 64-point FFT (Sec. VI-B), then crops the
//! bins at or below 5 Hz and normalizes by the maximum value. All of those
//! operations live here so both the defense and the baselines share one
//! implementation.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft;
use crate::window::WindowKind;

/// Short-time Fourier transform configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stft {
    window_len: usize,
    hop: usize,
    n_fft: usize,
    window: WindowKind,
}

impl Stft {
    /// Creates an STFT with `window_len` samples per frame, `hop` samples
    /// between frames and an FFT size equal to the next power of two of
    /// `window_len`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFrameConfig`] if `window_len` or `hop`
    /// is zero.
    pub fn new(window_len: usize, hop: usize, window: WindowKind) -> Result<Self, DspError> {
        if window_len == 0 || hop == 0 {
            return Err(DspError::InvalidFrameConfig {
                window: window_len,
                hop,
            });
        }
        Ok(Stft {
            window_len,
            hop,
            n_fft: fft::next_pow2(window_len),
            window,
        })
    }

    /// The vibration-feature configuration from the paper: 64-sample
    /// window, 32-sample hop (50% overlap), 64-point FFT, Hann window.
    pub fn vibration_default() -> Self {
        Stft::new(64, 32, WindowKind::Hann).expect("static config is valid")
    }

    /// Window length in samples.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Hop length in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// FFT size (next power of two of the window length).
    pub fn n_fft(&self) -> usize {
        self.n_fft
    }

    /// Number of frames produced for a signal of `n` samples. Signals
    /// shorter than one window yield a single zero-padded frame if
    /// non-empty, otherwise zero frames.
    pub fn frame_count(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else if n < self.window_len {
            1
        } else {
            (n - self.window_len) / self.hop + 1
        }
    }

    /// Computes the complex STFT. Frames are zero-padded to the FFT size.
    pub fn complex_spectrogram(&self, signal: &[f32]) -> Vec<Vec<Complex>> {
        let frames = self.frame_count(signal.len());
        let coeffs = self.window.coefficients(self.window_len);
        let half = self.n_fft / 2 + 1;
        let mut out = Vec::with_capacity(frames);
        for fi in 0..frames {
            let start = fi * self.hop;
            let mut buf = vec![Complex::ZERO; self.n_fft];
            for (i, slot) in buf.iter_mut().take(self.window_len).enumerate() {
                let idx = start + i;
                if idx < signal.len() {
                    *slot = Complex::from_real(signal[idx] * coeffs[i]);
                }
            }
            fft::fft_in_place(&mut buf).expect("n_fft is a power of two");
            buf.truncate(half);
            out.push(buf);
        }
        out
    }

    /// Computes the power spectrogram (squared FFT magnitudes), the
    /// vibration-domain feature of the paper.
    pub fn power_spectrogram(&self, signal: &[f32], sample_rate: u32) -> Spectrogram {
        let complex = self.complex_spectrogram(signal);
        let data: Vec<Vec<f32>> = complex
            .into_iter()
            .map(|frame| frame.into_iter().map(|c| c.norm_sq()).collect())
            .collect();
        Spectrogram {
            data,
            sample_rate,
            n_fft: self.n_fft,
            hop: self.hop,
            first_bin: 0,
        }
    }

    /// Computes the magnitude spectrogram (FFT magnitudes).
    pub fn magnitude_spectrogram(&self, signal: &[f32], sample_rate: u32) -> Spectrogram {
        let complex = self.complex_spectrogram(signal);
        let data: Vec<Vec<f32>> = complex
            .into_iter()
            .map(|frame| frame.into_iter().map(|c| c.norm()).collect())
            .collect();
        Spectrogram {
            data,
            sample_rate,
            n_fft: self.n_fft,
            hop: self.hop,
            first_bin: 0,
        }
    }
}

/// A time–frequency representation: `frames x bins` of non-negative
/// values, annotated with enough metadata to recover physical axes.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    data: Vec<Vec<f32>>,
    sample_rate: u32,
    n_fft: usize,
    hop: usize,
    /// Index of the first retained FFT bin (non-zero after cropping).
    first_bin: usize,
}

impl Spectrogram {
    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.data.len()
    }

    /// Number of frequency bins per frame.
    pub fn bins(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }

    /// Raw feature rows (`frames x bins`).
    pub fn rows(&self) -> &[Vec<f32>] {
        &self.data
    }

    /// Frequency in Hz of retained bin `b`.
    pub fn bin_frequency(&self, b: usize) -> f32 {
        (self.first_bin + b) as f32 * self.sample_rate as f32 / self.n_fft as f32
    }

    /// Time in seconds of frame `t` (frame start).
    pub fn frame_time(&self, t: usize) -> f32 {
        t as f32 * self.hop as f32 / self.sample_rate as f32
    }

    /// The largest value in the spectrogram (0 for an empty one).
    pub fn max_value(&self) -> f32 {
        self.data
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f32, |acc, &v| acc.max(v))
    }

    /// Removes all bins whose center frequency is `<= cutoff_hz`.
    ///
    /// The paper crops everything at or below 5 Hz to suppress the
    /// accelerometer's low-frequency sensitivity artifact and body-motion
    /// interference (Sec. VI-B, Fig. 7).
    pub fn crop_low_frequencies(&mut self, cutoff_hz: f32) {
        let bin_hz = self.sample_rate as f32 / self.n_fft as f32;
        let mut drop = 0usize;
        while (self.first_bin + drop) as f32 * bin_hz <= cutoff_hz {
            drop += 1;
            if drop > self.bins() {
                break;
            }
        }
        let drop = drop.min(self.bins());
        for row in &mut self.data {
            row.drain(..drop);
        }
        self.first_bin += drop;
    }

    /// Divides every value by the maximum value (no-op if the maximum is
    /// zero) — the paper's vibration-domain normalization that removes
    /// distance/volume scale differences (Sec. VI-C).
    pub fn normalize_by_max(&mut self) {
        let max = self.max_value();
        if max > 0.0 {
            for row in &mut self.data {
                for v in row {
                    *v /= max;
                }
            }
        }
    }

    /// Applies log compression `v <- ln(v + floor)` to every value.
    /// `floor` guards against `ln(0)` and sets the dynamic-range bottom.
    pub fn log_compress(&mut self, floor: f32) {
        for row in &mut self.data {
            for v in row {
                *v = (*v + floor).ln();
            }
        }
    }

    /// Flattens the first `n_frames` frames into one vector
    /// (frame-major). Used to compare two spectrograms over their common
    /// time support.
    pub fn flatten_frames(&self, n_frames: usize) -> Vec<f32> {
        self.data
            .iter()
            .take(n_frames)
            .flat_map(|r| r.iter().copied())
            .collect()
    }

    /// Mean value per bin across all frames (the "average FFT magnitude"
    /// curves of paper Figs. 3, 4 and 6 are built from this).
    pub fn mean_per_bin(&self) -> Vec<f32> {
        let bins = self.bins();
        let mut acc = vec![0.0f32; bins];
        for row in &self.data {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        let n = self.frames().max(1) as f32;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn rejects_zero_window_or_hop() {
        assert!(Stft::new(0, 1, WindowKind::Hann).is_err());
        assert!(Stft::new(64, 0, WindowKind::Hann).is_err());
    }

    #[test]
    fn frame_count_edges() {
        let s = Stft::new(64, 32, WindowKind::Hann).unwrap();
        assert_eq!(s.frame_count(0), 0);
        assert_eq!(s.frame_count(10), 1);
        assert_eq!(s.frame_count(64), 1);
        assert_eq!(s.frame_count(96), 2);
        assert_eq!(s.frame_count(128), 3);
    }

    #[test]
    fn tone_concentrates_energy_in_expected_bin() {
        let fs = 200u32;
        // 25 Hz tone, 64-point FFT at 200 Hz -> bin width 3.125 Hz -> bin 8.
        let sig = gen::sine(25.0, 1.0, fs, 2.0);
        let spec = Stft::vibration_default().power_spectrogram(&sig, fs);
        let mean = spec.mean_per_bin();
        let peak = crate::stats::argmax(&mean).unwrap();
        assert_eq!(peak, 8, "expected bin 8, got {peak}");
    }

    #[test]
    fn crop_low_frequencies_removes_dc_band() {
        let fs = 200u32;
        let sig = gen::sine(25.0, 1.0, fs, 1.0);
        let mut spec = Stft::vibration_default().power_spectrogram(&sig, fs);
        let bins_before = spec.bins();
        spec.crop_low_frequencies(5.0);
        // 200/64 = 3.125 Hz bins; bins 0 (0 Hz) and 1 (3.125 Hz) are <= 5 Hz.
        assert_eq!(spec.bins(), bins_before - 2);
        assert!(spec.bin_frequency(0) > 5.0);
    }

    #[test]
    fn normalize_by_max_bounds_values() {
        let fs = 200u32;
        let sig = gen::sine(25.0, 3.0, fs, 1.0);
        let mut spec = Stft::vibration_default().power_spectrogram(&sig, fs);
        spec.normalize_by_max();
        assert!((spec.max_value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_on_silence_is_noop() {
        let mut spec = Stft::vibration_default().power_spectrogram(&vec![0.0; 256], 200);
        spec.normalize_by_max();
        assert_eq!(spec.max_value(), 0.0);
    }

    #[test]
    fn frame_time_advances_by_hop() {
        let spec = Stft::vibration_default().power_spectrogram(&vec![0.1; 256], 200);
        assert!((spec.frame_time(1) - 32.0 / 200.0).abs() < 1e-6);
    }

    #[test]
    fn flatten_frames_takes_prefix() {
        let spec = Stft::vibration_default().power_spectrogram(&vec![0.1; 256], 200);
        let flat = spec.flatten_frames(2);
        assert_eq!(flat.len(), 2 * spec.bins());
    }
}
