//! Short-time Fourier transform and spectrogram representation.
//!
//! The paper derives vibration-domain features as the squared-magnitude
//! STFT with a 64-sample window / 64-point FFT (Sec. VI-B), then crops the
//! bins at or below 5 Hz and normalizes by the maximum value. All of those
//! operations live here so both the defense and the baselines share one
//! implementation.
//!
//! [`Spectrogram`] stores its `frames x bins` values in one contiguous
//! row-major buffer with stride metadata. Cropping low-frequency bins is
//! an `O(1)` metadata update (the column window slides right within each
//! row), and consumers that walk every value — normalization, 2-D
//! correlation, feature flattening — traverse a flat slice instead of
//! chasing one heap allocation per frame.

use crate::complex::Complex;
use crate::error::DspError;
use crate::fft;
use crate::window::WindowKind;

/// Short-time Fourier transform configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stft {
    window_len: usize,
    hop: usize,
    n_fft: usize,
    window: WindowKind,
}

impl Stft {
    /// Creates an STFT with `window_len` samples per frame, `hop` samples
    /// between frames and an FFT size equal to the next power of two of
    /// `window_len`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFrameConfig`] if `window_len` or `hop`
    /// is zero.
    pub fn new(window_len: usize, hop: usize, window: WindowKind) -> Result<Self, DspError> {
        if window_len == 0 || hop == 0 {
            return Err(DspError::InvalidFrameConfig {
                window: window_len,
                hop,
            });
        }
        Ok(Stft {
            window_len,
            hop,
            n_fft: fft::next_pow2(window_len),
            window,
        })
    }

    /// The vibration-feature configuration from the paper: 64-sample
    /// window, 32-sample hop (50% overlap), 64-point FFT, Hann window.
    pub fn vibration_default() -> Self {
        Stft::new(64, 32, WindowKind::Hann).expect("static config is valid")
    }

    /// Window length in samples.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Hop length in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// FFT size (next power of two of the window length).
    pub fn n_fft(&self) -> usize {
        self.n_fft
    }

    /// Number of frames produced for a signal of `n` samples. Signals
    /// shorter than one window yield a single zero-padded frame if
    /// non-empty, otherwise zero frames.
    pub fn frame_count(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else if n < self.window_len {
            1
        } else {
            (n - self.window_len) / self.hop + 1
        }
    }

    /// Computes the complex STFT (frames of `n_fft / 2 + 1` non-negative
    /// frequency bins). Frames are zero-padded to the FFT size and
    /// transformed with the planned real-input FFT. Values land in the
    /// same flat row-major layout the real spectrograms use.
    pub fn complex_spectrogram(&self, signal: &[f32]) -> ComplexSpectrogram {
        let _span = thrubarrier_obs::span!("dsp.stft.complex");
        let frames = self.frame_count(signal.len());
        let bins = if frames == 0 { 0 } else { self.n_fft / 2 + 1 };
        let coeffs = self.window.coefficients(self.window_len);
        let mut data = vec![Complex::ZERO; frames * bins];
        let mut frame = vec![0.0f32; self.window_len];
        let mut spec = Vec::with_capacity(bins);
        for fi in 0..frames {
            self.window_frame(signal, fi, &coeffs, &mut frame);
            fft::half_spectrum_into(&frame, self.n_fft, &mut spec);
            data[fi * bins..(fi + 1) * bins].copy_from_slice(&spec);
        }
        ComplexSpectrogram { data, frames, bins }
    }

    /// Fills `frame` with the windowed samples of frame `fi`, zero-padded
    /// past the end of the signal.
    fn window_frame(&self, signal: &[f32], fi: usize, coeffs: &[f32], frame: &mut [f32]) {
        let start = fi * self.hop;
        for (i, (slot, &c)) in frame.iter_mut().zip(coeffs).enumerate() {
            *slot = signal.get(start + i).map_or(0.0, |&x| x * c);
        }
    }

    /// Shared core of the real spectrogram builders: one contiguous
    /// buffer, one reused windowed frame, one reused half spectrum.
    fn spectrogram_with(
        &self,
        signal: &[f32],
        sample_rate: u32,
        to_value: impl Fn(Complex) -> f32,
    ) -> Spectrogram {
        let _span = thrubarrier_obs::span!("dsp.stft.real");
        let frames = self.frame_count(signal.len());
        let bins = if frames == 0 { 0 } else { self.n_fft / 2 + 1 };
        let coeffs = self.window.coefficients(self.window_len);
        let mut data = vec![0.0f32; frames * bins];
        let mut frame = vec![0.0f32; self.window_len];
        let mut spec = Vec::with_capacity(bins);
        for fi in 0..frames {
            self.window_frame(signal, fi, &coeffs, &mut frame);
            fft::half_spectrum_into(&frame, self.n_fft, &mut spec);
            for (slot, &c) in data[fi * bins..(fi + 1) * bins].iter_mut().zip(&spec) {
                *slot = to_value(c);
            }
        }
        Spectrogram {
            data,
            frames,
            stride: bins,
            col_start: 0,
            bins,
            sample_rate,
            n_fft: self.n_fft,
            hop: self.hop,
            first_bin: 0,
        }
    }

    /// Computes the power spectrogram (squared FFT magnitudes), the
    /// vibration-domain feature of the paper.
    pub fn power_spectrogram(&self, signal: &[f32], sample_rate: u32) -> Spectrogram {
        self.spectrogram_with(signal, sample_rate, Complex::norm_sq)
    }

    /// Computes the magnitude spectrogram (FFT magnitudes).
    pub fn magnitude_spectrogram(&self, signal: &[f32], sample_rate: u32) -> Spectrogram {
        self.spectrogram_with(signal, sample_rate, Complex::norm)
    }
}

/// A complex STFT: `frames x bins` of [`Complex`] FFT coefficients in
/// one contiguous row-major buffer — the same flat layout as
/// [`Spectrogram`], without the cropping metadata (phase-aware
/// consumers crop before transforming instead).
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexSpectrogram {
    data: Vec<Complex>,
    frames: usize,
    bins: usize,
}

impl ComplexSpectrogram {
    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Number of frequency bins per frame.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The coefficients of frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.frames()`.
    pub fn row(&self, t: usize) -> &[Complex] {
        assert!(t < self.frames, "frame {t} out of range");
        &self.data[t * self.bins..(t + 1) * self.bins]
    }

    /// Iterates over the frames (`frames` slices of `bins` coefficients).
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Complex]> + Clone {
        self.data.chunks(self.bins.max(1)).take(self.frames)
    }

    /// All coefficients as one flat row-major slice.
    pub fn flat(&self) -> &[Complex] {
        &self.data
    }
}

/// A time–frequency representation: `frames x bins` of non-negative
/// values, annotated with enough metadata to recover physical axes.
///
/// Values live in one row-major buffer; `stride` is the allocated row
/// width and `col_start` the offset of the first visible bin, so
/// [`Spectrogram::crop_low_frequencies`] never moves data. Rows are
/// exposed as slices via [`Spectrogram::rows`] / [`Spectrogram::row`].
#[derive(Debug, Clone)]
pub struct Spectrogram {
    data: Vec<f32>,
    frames: usize,
    stride: usize,
    col_start: usize,
    bins: usize,
    sample_rate: u32,
    n_fft: usize,
    hop: usize,
    /// Index of the first retained FFT bin (non-zero after cropping).
    first_bin: usize,
}

impl PartialEq for Spectrogram {
    /// Compares the *visible* values and axis metadata, so a cropped
    /// spectrogram equals one built directly at the cropped size.
    fn eq(&self, other: &Self) -> bool {
        self.frames == other.frames
            && self.bins == other.bins
            && self.sample_rate == other.sample_rate
            && self.n_fft == other.n_fft
            && self.hop == other.hop
            && self.first_bin == other.first_bin
            && self.rows().eq(other.rows())
    }
}

impl Spectrogram {
    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Number of frequency bins per frame.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Feature row (visible bins) of frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.frames()`.
    pub fn row(&self, t: usize) -> &[f32] {
        let start = t * self.stride + self.col_start;
        &self.data[start..start + self.bins]
    }

    /// Iterates over the feature rows (`frames` slices of `bins` values).
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + Clone {
        let stride = self.stride.max(1);
        self.data
            .chunks(stride)
            .take(self.frames)
            .map(move |r| &r[self.col_start..self.col_start + self.bins])
    }

    /// The visible values as one flat row-major slice, available when no
    /// bins have been cropped (`col_start == 0`, full-width rows).
    fn flat(&self) -> Option<&[f32]> {
        (self.col_start == 0 && self.bins == self.stride).then_some(&self.data[..])
    }

    /// Visits every visible value mutably.
    fn for_each_value_mut(&mut self, mut f: impl FnMut(&mut f32)) {
        if self.col_start == 0 && self.bins == self.stride {
            self.data.iter_mut().for_each(f);
            return;
        }
        for chunk in self.data.chunks_mut(self.stride.max(1)).take(self.frames) {
            chunk[self.col_start..self.col_start + self.bins]
                .iter_mut()
                .for_each(&mut f);
        }
    }

    /// Frequency in Hz of retained bin `b`.
    pub fn bin_frequency(&self, b: usize) -> f32 {
        (self.first_bin + b) as f32 * self.sample_rate as f32 / self.n_fft as f32
    }

    /// Time in seconds of frame `t` (frame start).
    pub fn frame_time(&self, t: usize) -> f32 {
        t as f32 * self.hop as f32 / self.sample_rate as f32
    }

    /// The largest value in the spectrogram (0 for an empty one).
    pub fn max_value(&self) -> f32 {
        if let Some(flat) = self.flat() {
            return flat.iter().fold(0.0f32, |acc, &v| acc.max(v));
        }
        self.rows().flatten().fold(0.0f32, |acc, &v| acc.max(v))
    }

    /// Removes all bins whose center frequency is `<= cutoff_hz`.
    ///
    /// The paper crops everything at or below 5 Hz to suppress the
    /// accelerometer's low-frequency sensitivity artifact and body-motion
    /// interference (Sec. VI-B, Fig. 7). With the strided layout this is
    /// a metadata update — no data moves.
    pub fn crop_low_frequencies(&mut self, cutoff_hz: f32) {
        let bin_hz = self.sample_rate as f32 / self.n_fft as f32;
        let mut drop = 0usize;
        while (self.first_bin + drop) as f32 * bin_hz <= cutoff_hz {
            drop += 1;
            if drop > self.bins {
                break;
            }
        }
        let drop = drop.min(self.bins);
        self.col_start += drop;
        self.bins -= drop;
        self.first_bin += drop;
    }

    /// Divides every value by the maximum value (no-op if the maximum is
    /// zero) — the paper's vibration-domain normalization that removes
    /// distance/volume scale differences (Sec. VI-C).
    pub fn normalize_by_max(&mut self) {
        let max = self.max_value();
        if max > 0.0 {
            self.for_each_value_mut(|v| *v /= max);
        }
    }

    /// Applies log compression `v <- ln(v + floor)` to every value.
    /// `floor` guards against `ln(0)` and sets the dynamic-range bottom.
    pub fn log_compress(&mut self, floor: f32) {
        self.for_each_value_mut(|v| *v = (*v + floor).ln());
    }

    /// Flattens the first `n_frames` frames into one vector
    /// (frame-major). Used to compare two spectrograms over their common
    /// time support.
    pub fn flatten_frames(&self, n_frames: usize) -> Vec<f32> {
        let take = n_frames.min(self.frames);
        if let Some(flat) = self.flat() {
            return flat[..take * self.stride].to_vec();
        }
        let mut out = Vec::with_capacity(take * self.bins);
        for t in 0..take {
            out.extend_from_slice(self.row(t));
        }
        out
    }

    /// Mean value per bin across all frames (the "average FFT magnitude"
    /// curves of paper Figs. 3, 4 and 6 are built from this).
    pub fn mean_per_bin(&self) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.bins];
        for row in self.rows() {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v;
            }
        }
        let n = self.frames.max(1) as f32;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn rejects_zero_window_or_hop() {
        assert!(Stft::new(0, 1, WindowKind::Hann).is_err());
        assert!(Stft::new(64, 0, WindowKind::Hann).is_err());
    }

    #[test]
    fn frame_count_edges() {
        let s = Stft::new(64, 32, WindowKind::Hann).unwrap();
        assert_eq!(s.frame_count(0), 0);
        assert_eq!(s.frame_count(10), 1);
        assert_eq!(s.frame_count(64), 1);
        assert_eq!(s.frame_count(96), 2);
        assert_eq!(s.frame_count(128), 3);
    }

    #[test]
    fn tone_concentrates_energy_in_expected_bin() {
        let fs = 200u32;
        // 25 Hz tone, 64-point FFT at 200 Hz -> bin width 3.125 Hz -> bin 8.
        let sig = gen::sine(25.0, 1.0, fs, 2.0);
        let spec = Stft::vibration_default().power_spectrogram(&sig, fs);
        let mean = spec.mean_per_bin();
        let peak = crate::stats::argmax(&mean).unwrap();
        assert_eq!(peak, 8, "expected bin 8, got {peak}");
    }

    #[test]
    fn crop_low_frequencies_removes_dc_band() {
        let fs = 200u32;
        let sig = gen::sine(25.0, 1.0, fs, 1.0);
        let mut spec = Stft::vibration_default().power_spectrogram(&sig, fs);
        let bins_before = spec.bins();
        spec.crop_low_frequencies(5.0);
        // 200/64 = 3.125 Hz bins; bins 0 (0 Hz) and 1 (3.125 Hz) are <= 5 Hz.
        assert_eq!(spec.bins(), bins_before - 2);
        assert!(spec.bin_frequency(0) > 5.0);
    }

    #[test]
    fn crop_is_a_view_change_rows_stay_consistent() {
        let fs = 200u32;
        let sig = gen::sine(25.0, 1.0, fs, 1.0);
        let mut spec = Stft::vibration_default().power_spectrogram(&sig, fs);
        let before: Vec<Vec<f32>> = spec.rows().map(|r| r.to_vec()).collect();
        spec.crop_low_frequencies(5.0);
        assert_eq!(spec.rows().len(), before.len());
        for (t, row) in spec.rows().enumerate() {
            assert_eq!(row, &before[t][2..], "frame {t}");
            assert_eq!(row, spec.row(t));
        }
        // Values survive a mutation pass over the cropped view too.
        spec.normalize_by_max();
        assert!((spec.max_value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_by_max_bounds_values() {
        let fs = 200u32;
        let sig = gen::sine(25.0, 3.0, fs, 1.0);
        let mut spec = Stft::vibration_default().power_spectrogram(&sig, fs);
        spec.normalize_by_max();
        assert!((spec.max_value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_on_silence_is_noop() {
        let mut spec = Stft::vibration_default().power_spectrogram(&vec![0.0; 256], 200);
        spec.normalize_by_max();
        assert_eq!(spec.max_value(), 0.0);
    }

    #[test]
    fn frame_time_advances_by_hop() {
        let spec = Stft::vibration_default().power_spectrogram(&vec![0.1; 256], 200);
        assert!((spec.frame_time(1) - 32.0 / 200.0).abs() < 1e-6);
    }

    #[test]
    fn flatten_frames_takes_prefix() {
        let spec = Stft::vibration_default().power_spectrogram(&vec![0.1; 256], 200);
        let flat = spec.flatten_frames(2);
        assert_eq!(flat.len(), 2 * spec.bins());
    }

    #[test]
    fn empty_signal_yields_empty_spectrogram() {
        let spec = Stft::vibration_default().power_spectrogram(&[], 200);
        assert_eq!(spec.frames(), 0);
        assert_eq!(spec.bins(), 0);
        assert_eq!(spec.max_value(), 0.0);
        assert_eq!(spec.rows().len(), 0);
    }

    #[test]
    fn complex_spectrogram_magnitudes_match_magnitude_spectrogram() {
        let fs = 200u32;
        let sig = gen::sine(25.0, 1.0, fs, 1.0);
        let stft = Stft::vibration_default();
        let complex = stft.complex_spectrogram(&sig);
        let mags = stft.magnitude_spectrogram(&sig, fs);
        assert_eq!(complex.frames(), mags.frames());
        assert_eq!(complex.bins(), mags.bins());
        for (crow, mrow) in complex.rows().zip(mags.rows()) {
            for (c, &m) in crow.iter().zip(mrow) {
                assert!((c.norm() - m).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn complex_spectrogram_is_flat_and_row_addressable() {
        let stft = Stft::vibration_default();
        let spec = stft.complex_spectrogram(&vec![0.1; 256]);
        assert_eq!(spec.frames(), stft.frame_count(256));
        assert_eq!(spec.bins(), stft.n_fft() / 2 + 1);
        assert_eq!(spec.flat().len(), spec.frames() * spec.bins());
        for (t, row) in spec.rows().enumerate() {
            assert_eq!(row, spec.row(t));
            assert_eq!(row, &spec.flat()[t * spec.bins()..(t + 1) * spec.bins()]);
        }
    }

    #[test]
    fn complex_spectrogram_of_empty_signal_is_empty() {
        let spec = Stft::vibration_default().complex_spectrogram(&[]);
        assert_eq!(spec.frames(), 0);
        assert_eq!(spec.bins(), 0);
        assert!(spec.flat().is_empty());
        assert_eq!(spec.rows().len(), 0);
    }
}
