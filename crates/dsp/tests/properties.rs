//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use thrubarrier_dsp::{
    complex::Complex, correlate, fft, resample, stats, stft::Stft, window::WindowKind,
};

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, 1..max_len)
}

/// The pre-plan FFT the crate shipped with: per-stage twiddle recurrence
/// (`w *= wlen`) instead of precomputed tables. Kept here verbatim as a
/// behavioural reference for the planned engine.
fn legacy_fft(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0f32 } else { -1.0f32 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f32::consts::TAU / len as f32;
        let wlen = Complex::from_polar(1.0, ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..half {
                let a = buf[start + k];
                let b = buf[start + k + half] * w;
                buf[start + k] = a + b;
                buf[start + k + half] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        for v in buf.iter_mut() {
            *v = v.scale(1.0 / n as f32);
        }
    }
}

proptest! {
    #[test]
    fn fft_ifft_roundtrip_recovers_signal(sig in signal_strategy(256)) {
        let n = fft::next_pow2(sig.len());
        let mut buf: Vec<Complex> = sig.iter().map(|&x| Complex::from_real(x)).collect();
        buf.resize(n, Complex::ZERO);
        fft::fft_in_place(&mut buf).unwrap();
        fft::ifft_in_place(&mut buf).unwrap();
        for (orig, got) in sig.iter().zip(&buf) {
            prop_assert!((orig - got.re).abs() < 1e-3);
            prop_assert!(got.im.abs() < 1e-3);
        }
    }

    #[test]
    fn fft_is_linear(a in signal_strategy(128), k in -4.0f32..4.0) {
        let n = fft::next_pow2(a.len());
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        let fa = fft::fft_padded(&a, n);
        let fs = fft::fft_padded(&scaled, n);
        for (x, y) in fa.iter().zip(&fs) {
            prop_assert!((x.re * k - y.re).abs() < 1e-2);
            prop_assert!((x.im * k - y.im).abs() < 1e-2);
        }
    }

    #[test]
    fn parseval_holds(sig in signal_strategy(256)) {
        let time_energy: f32 = sig.iter().map(|x| x * x).sum();
        let spec = fft::fft_padded(&sig, 0);
        let freq_energy: f32 =
            spec.iter().map(|c| c.norm_sq()).sum::<f32>() / spec.len() as f32;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-2 * time_energy.max(1.0));
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        a in prop::collection::vec(-10.0f32..10.0, 4..64),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f32> = (0..a.len()).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let r_ab = stats::pearson(&a, &b);
        let r_ba = stats::pearson(&b, &a);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&r_ab));
        prop_assert!((r_ab - r_ba).abs() < 1e-5);
    }

    #[test]
    fn pearson_is_scale_and_shift_invariant(
        a in prop::collection::vec(-10.0f32..10.0, 4..64),
        scale in 0.1f32..5.0,
        shift in -5.0f32..5.0,
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * scale + shift).collect();
        // Skip degenerate constant inputs.
        if stats::std_dev(&a) > 1e-3 {
            prop_assert!((stats::pearson(&a, &b) - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn percentile_is_monotone_in_p(xs in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let p25 = stats::percentile(&xs, 25.0);
        let p50 = stats::percentile(&xs, 50.0);
        let p75 = stats::percentile(&xs, 75.0);
        prop_assert!(p25 <= p50 + 1e-6);
        prop_assert!(p50 <= p75 + 1e-6);
    }

    #[test]
    fn percentile_is_bounded_by_extremes(xs in prop::collection::vec(-100.0f32..100.0, 1..64), p in 0.0f32..100.0) {
        let v = stats::percentile(&xs, p);
        let min = xs.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
    }

    #[test]
    fn delay_estimation_roundtrip(lag in 0usize..200, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = thrubarrier_dsp::gen::gaussian_noise(&mut rng, 1.0, 1_000);
        let mut delayed = vec![0.0f32; lag];
        delayed.extend_from_slice(&reference);
        let est = correlate::estimate_delay(&reference, &delayed, 256).unwrap();
        // Lags beyond the search bound clamp to the bound.
        if lag <= 256 {
            prop_assert_eq!(est, lag as isize);
        }
    }

    /// The FFT path of the full correlation is a tolerance-gated drop-in
    /// for the exact time-domain oracle on mixed lengths, including the
    /// degenerate N=1 and strongly asymmetric N>>M shapes.
    #[test]
    fn fft_cross_correlation_matches_time_domain_oracle(
        a in prop::collection::vec(-1.0f32..1.0, 1..400),
        b_len in prop::sample::select(vec![1usize, 2, 7, 63, 64, 350]),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f32> = (0..b_len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let oracle = correlate::cross_correlate_time(&a, &b);
        for path in [correlate::XcorrPath::Fft, correlate::XcorrPath::OverlapSave] {
            let fast = correlate::cross_correlate_with(&a, &b, path).unwrap();
            prop_assert_eq!(fast.len(), oracle.len());
            let scale = oracle.iter().fold(1.0f32, |m, &v| m.max(v.abs()));
            for (i, (f, r)) in fast.iter().zip(&oracle).enumerate() {
                prop_assert!(
                    (f - r).abs() / scale < 1e-4,
                    "{:?} sample {}: {} vs {}", path, i, f, r
                );
            }
        }
    }

    /// Every bounded-lag search path recovers a genuinely embedded delay
    /// exactly; the auto path must match whichever it picked.
    #[test]
    fn bounded_lag_paths_agree_on_embedded_delay(
        lag in 0usize..500,
        len in 600usize..2_000,
        max_lag in 500usize..700,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = thrubarrier_dsp::gen::gaussian_noise(&mut rng, 1.0, len);
        let mut delayed = vec![0.0f32; lag];
        delayed.extend_from_slice(&reference);
        for search in [
            correlate::LagSearch::Auto,
            correlate::LagSearch::TimeDomain,
            correlate::LagSearch::Fft,
            correlate::LagSearch::CoarseToFine,
        ] {
            let est =
                correlate::estimate_delay_with(&reference, &delayed, max_lag, search).unwrap();
            prop_assert_eq!(est, lag as isize, "{:?}", search);
        }
    }

    /// On arbitrary (not necessarily peaked) signal pairs the FFT window
    /// agrees with the exhaustive time-domain window: same argmax unless
    /// the surface is near-tied at f32 tolerance, in which case the two
    /// winners' correlation values must be indistinguishable.
    #[test]
    fn bounded_lag_fft_matches_exhaustive_on_arbitrary_pairs(
        a in prop::collection::vec(-1.0f32..1.0, 1..300),
        b in prop::collection::vec(-1.0f32..1.0, 1..300),
        max_lag in 0usize..400,
    ) {
        let exact =
            correlate::estimate_delay_with(&b, &a, max_lag, correlate::LagSearch::TimeDomain)
                .unwrap();
        let fft =
            correlate::estimate_delay_with(&b, &a, max_lag, correlate::LagSearch::Fft).unwrap();
        if exact != fft {
            // Tolerance gate: both winning lags carry the same score up
            // to transform rounding.
            let full = correlate::cross_correlate_time(&a, &b);
            let zero = b.len() as isize - 1;
            let v_exact = full[(zero + exact) as usize];
            let v_fft = full[(zero + fft) as usize];
            let scale = full.iter().fold(1.0f32, |m, &v| m.max(v.abs()));
            prop_assert!(
                (v_exact - v_fft).abs() / scale < 1e-3,
                "argmax moved {} -> {} with gap {} vs {}", exact, fft, v_exact, v_fft
            );
        }
    }

    #[test]
    fn align_by_delay_inverts_prepended_zeros(sig in signal_strategy(128), lag in 0usize..32) {
        let mut delayed = vec![0.0f32; lag];
        delayed.extend_from_slice(&sig);
        let aligned = correlate::align_by_delay(&delayed, lag as isize);
        prop_assert_eq!(aligned, sig);
    }

    #[test]
    fn decimate_aliased_length(sig in signal_strategy(512), factor in 1usize..16) {
        let out = resample::decimate_aliased(&sig, factor).unwrap();
        prop_assert_eq!(out.len(), sig.len().div_ceil(factor));
    }

    #[test]
    fn alias_frequency_is_within_nyquist(f in 0.0f32..20_000.0) {
        let fa = resample::alias_frequency(f, 200.0);
        prop_assert!((0.0..=100.0).contains(&fa));
    }

    #[test]
    fn window_coefficients_are_bounded(n in 0usize..512) {
        for kind in [WindowKind::Rectangular, WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            for &w in &kind.coefficients(n) {
                prop_assert!((-1e-6..=1.0 + 1e-6).contains(&w));
            }
        }
    }

    #[test]
    fn spectrogram_frame_count_matches_prediction(len in 1usize..2_000) {
        let stft = Stft::vibration_default();
        let sig = vec![0.1f32; len];
        let spec = stft.power_spectrogram(&sig, 200);
        prop_assert_eq!(spec.frames(), stft.frame_count(len));
    }

    #[test]
    fn power_spectrogram_is_nonnegative(sig in signal_strategy(512)) {
        let spec = Stft::vibration_default().power_spectrogram(&sig, 200);
        for row in spec.rows() {
            for &v in row {
                prop_assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn normalized_spectrogram_max_is_one_or_zero(sig in signal_strategy(512)) {
        let mut spec = Stft::vibration_default().power_spectrogram(&sig, 200);
        spec.normalize_by_max();
        let m = spec.max_value();
        prop_assert!(m == 0.0 || (m - 1.0).abs() < 1e-5);
    }

    #[test]
    fn correlation_2d_self_is_one_for_nonconstant(
        rows in prop::collection::vec(prop::collection::vec(0.0f32..1.0, 8), 2..16),
    ) {
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        if stats::std_dev(&flat) > 1e-3 {
            let r = correlate::correlation_2d(&rows, &rows).unwrap();
            prop_assert!((r - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn db_amplitude_roundtrip(db in -80.0f32..40.0) {
        let amp = stats::db_to_amplitude(db);
        prop_assert!((stats::amplitude_to_db(amp) - db).abs() < 1e-3);
    }

    #[test]
    fn planned_fft_matches_legacy_recurrence_fft(
        exp in 0usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = 1usize << exp; // power-of-two sizes up to 2048
        let inverse = seed % 2 == 0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut planned: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut legacy = planned.clone();
        if inverse {
            fft::ifft_in_place(&mut planned).unwrap();
        } else {
            fft::fft_in_place(&mut planned).unwrap();
        }
        legacy_fft(&mut legacy, inverse);
        let scale = legacy
            .iter()
            .map(|c| c.norm())
            .fold(1e-6f32, f32::max);
        for (p, l) in planned.iter().zip(&legacy) {
            // The legacy recurrence drifts; the planned tables are exact
            // per entry, so the gap is bounded by the recurrence error.
            prop_assert!((*p - *l).norm() / scale < 2e-3);
        }
    }

    #[test]
    fn response_curve_matches_direct_closure_filter(
        sig in signal_strategy(512),
        cutoff in 100.0f32..7_000.0,
    ) {
        use thrubarrier_dsp::response;
        let direct = fft::apply_frequency_response(&sig, 16_000, |f| {
            if f < cutoff { 1.0 } else { (cutoff / f).powi(2) }
        });
        let key = response::curve_key(0x5052_4F50, &[cutoff]);
        let cached = response::filter_cached(key, &sig, 16_000, move |f| {
            if f < cutoff { 1.0 } else { (cutoff / f).powi(2) }
        });
        prop_assert_eq!(direct.len(), cached.len());
        for (d, c) in direct.iter().zip(&cached) {
            prop_assert!((d - c).abs() < 1e-5);
        }
    }

    #[test]
    fn contiguous_spectrogram_roundtrips_like_nested_rows(
        sig in signal_strategy(1_024),
        crop_hz in 0.0f32..40.0,
    ) {
        let stft = Stft::vibration_default();
        let mut spec = stft.power_spectrogram(&sig, 200);
        // Snapshot the nested-row view before mutating.
        let before: Vec<Vec<f32>> = spec.rows().map(<[f32]>::to_vec).collect();
        spec.crop_low_frequencies(crop_hz);
        // The crop is a metadata change: every surviving value must equal
        // the tail of the corresponding pre-crop row.
        let dropped = before.first().map_or(0, |r| r.len() - spec.bins());
        for (row, full) in spec.rows().zip(&before) {
            prop_assert_eq!(row, &full[dropped..]);
        }
        // flatten_frames agrees with walking rows() in order.
        let walked: Vec<f32> = spec.rows().flatten().copied().collect();
        prop_assert_eq!(spec.flatten_frames(spec.frames()), walked);
        // normalize_by_max scales every visible value by the same factor.
        let max = spec.max_value();
        let mut normed = spec.clone();
        normed.normalize_by_max();
        if max > 0.0 {
            for (r, n) in spec.rows().zip(normed.rows()) {
                for (&a, &b) in r.iter().zip(n) {
                    prop_assert!((a / max - b).abs() < 1e-6);
                }
            }
        } else {
            prop_assert_eq!(spec, normed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Overlap-save frequency-domain convolution is a drop-in for the
    /// direct O(N·M) form on arbitrary signal/IR lengths.
    #[test]
    fn overlap_save_convolution_matches_direct_form(
        signal in signal_strategy(600),
        ir in signal_strategy(80),
    ) {
        let fast = thrubarrier_dsp::filter::overlap_save_convolve(&signal, &ir);
        let mut reference = vec![0.0f32; signal.len() + ir.len() - 1];
        for (i, &s) in signal.iter().enumerate() {
            for (k, &h) in ir.iter().enumerate() {
                reference[i + k] += s * h;
            }
        }
        prop_assert_eq!(fast.len(), reference.len());
        let scale = reference.iter().fold(1.0f32, |a, &b| a.max(b.abs()));
        for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
            prop_assert!(
                (f - r).abs() / scale < 1e-4,
                "sample {}: {} vs {}", i, f, r
            );
        }
    }
}
