//! Behavior tests for the observability layer. Every test passes both
//! with and without `--features obs`: the uninstrumented build asserts
//! the no-op contract, the instrumented build asserts real recording.

use std::sync::Mutex;
use std::time::Instant;
use thrubarrier_obs as obs;

/// Tests here flip the process-wide recording flag, so they serialize
/// on one lock instead of racing each other under the parallel test
/// harness.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn counters_gauges_and_histograms_record_when_compiled() {
    let _x = exclusive();
    obs::set_enabled(true);
    let c = obs::counter!("test.counter");
    let before = c.get();
    c.incr();
    c.add(4);
    let g = obs::gauge!("test.gauge");
    g.set(0);
    g.incr();
    g.incr();
    g.decr();
    let h = obs::histogram!("test.histogram");
    h.record(8);
    if obs::COMPILED {
        assert_eq!(c.get(), before + 5);
        assert_eq!(g.get(), 1);
        assert!(h.count() >= 1);
        assert!(h.max() >= 8);
    } else {
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
    }
}

#[test]
fn macro_sites_resolve_to_the_same_registered_metric() {
    let _x = exclusive();
    obs::set_enabled(true);
    let a = obs::counter!("test.same_site");
    let b = obs::counter!("test.same_site");
    let before = a.get();
    b.incr();
    if obs::COMPILED {
        assert!(std::ptr::eq(a, b), "same name must intern to one counter");
        assert_eq!(a.get(), before + 1);
    }
}

#[test]
fn spans_feed_their_duration_histogram() {
    let _x = exclusive();
    obs::set_enabled(true);
    let stat = obs::registry().span("test.span");
    let before = stat.durations().count();
    {
        let _span = obs::span!("test.span");
        std::hint::black_box(0u64);
    }
    if obs::COMPILED {
        assert_eq!(stat.durations().count(), before + 1);
        assert_eq!(stat.name(), "test.span");
    } else {
        assert_eq!(stat.durations().count(), 0);
    }
}

#[test]
fn runtime_disable_stops_recording() {
    let _x = exclusive();
    obs::set_enabled(true);
    let c = obs::counter!("test.disable");
    let before = c.get();
    obs::set_enabled(false);
    c.incr();
    {
        let _span = obs::span!("test.disable_span");
    }
    obs::set_enabled(true);
    assert_eq!(c.get(), before, "disabled counter must not move");
    assert_eq!(
        obs::registry()
            .span("test.disable_span")
            .durations()
            .count(),
        0
    );
}

/// The bench guard for the tier-1 line: an instrumented span whose
/// recording is disabled must cost less than the measurement noise
/// floor. With the feature off the span is a true no-op; with it on,
/// the cost is one relaxed atomic load and a branch — either way, far
/// below the 100 ns/span bound asserted here (a deliberately generous
/// ceiling so shared-host noise cannot flake the suite; real cost is
/// ~1 ns).
#[test]
fn disabled_span_overhead_is_below_the_noise_floor() {
    let _x = exclusive();
    obs::set_enabled(false);
    const ITERS: u64 = 200_000;
    let mut best_ns_per_span = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for i in 0..ITERS {
            let _span = obs::span!("test.overhead");
            std::hint::black_box(i);
        }
        let ns = t0.elapsed().as_nanos() as f64 / ITERS as f64;
        best_ns_per_span = best_ns_per_span.min(ns);
    }
    obs::set_enabled(true);
    assert!(
        best_ns_per_span < 100.0,
        "disabled span costs {best_ns_per_span:.1} ns, above the 100 ns noise floor"
    );
}

#[test]
fn snapshot_json_has_all_sections_and_balanced_braces() {
    let _x = exclusive();
    obs::set_enabled(true);
    obs::counter!("test.snapshot.counter").incr();
    obs::histogram!("test.snapshot.hist").record(1000);
    let json = obs::snapshot_json("  ");
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in {json}");
    if obs::COMPILED {
        assert!(json.contains("\"test.snapshot.counter\""));
        assert!(json.contains("\"count\":"));
    }
}

#[test]
fn chrome_trace_round_trip_produces_slices_per_thread() {
    let _x = exclusive();
    obs::set_enabled(true);
    obs::start_trace();
    obs::label_thread("main-test");
    {
        let _outer = obs::span!("test.trace.outer");
        let _inner = obs::span!("test.trace.inner");
    }
    std::thread::scope(|scope| {
        scope.spawn(|| {
            obs::label_thread("worker-test");
            let _span = obs::span!("test.trace.worker");
        });
    });
    let trace = obs::finish_trace();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with("]}"));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    if obs::COMPILED {
        assert!(trace.contains("\"test.trace.outer\""));
        // The worker thread exited before export; its buffered slice
        // must have been flushed by the thread-exit hook.
        assert!(trace.contains("\"test.trace.worker\""));
        // Nesting is preserved through the span stack.
        assert!(trace.contains("\"parent\":\"test.trace.outer\""));
        assert!(trace.contains("\"thread_name\""));
    }
}

#[test]
fn trace_window_scopes_event_collection() {
    let _x = exclusive();
    obs::set_enabled(true);
    {
        let _span = obs::span!("test.trace.before_window");
    }
    obs::start_trace();
    let trace = obs::finish_trace();
    assert!(
        !trace.contains("test.trace.before_window"),
        "events outside the window leaked into {trace}"
    );
    assert!(!obs::trace_active());
}

#[test]
fn reset_zeroes_registered_metrics() {
    let _x = exclusive();
    obs::set_enabled(true);
    let c = obs::counter!("test.reset.counter");
    c.incr();
    let h = obs::histogram!("test.reset.hist");
    h.record(5);
    obs::reset();
    assert_eq!(c.get(), 0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.max(), 0);
}
