//! The uninstrumented implementation: every type is zero-sized and
//! every method an empty `#[inline(always)]` body, so instrumentation
//! call sites compile to nothing when the `obs` feature is off. The
//! API mirrors `imp` exactly — downstream code never gates on the
//! feature itself.

/// See the instrumented `Counter`; here a unit type.
#[derive(Debug, Default)]
pub struct Counter;

impl Counter {
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn incr(&self) {}
    pub fn get(&self) -> u64 {
        0
    }
    pub fn noop() -> &'static Counter {
        &Counter
    }
}

/// See the instrumented `Gauge`; here a unit type.
#[derive(Debug, Default)]
pub struct Gauge;

impl Gauge {
    #[inline(always)]
    pub fn add(&self, _delta: i64) {}
    #[inline(always)]
    pub fn incr(&self) {}
    #[inline(always)]
    pub fn decr(&self) {}
    #[inline(always)]
    pub fn set(&self, _value: i64) {}
    pub fn get(&self) -> i64 {
        0
    }
    pub fn noop() -> &'static Gauge {
        &Gauge
    }
}

/// See the instrumented `Histogram`; here a unit type.
#[derive(Debug, Default)]
pub struct Histogram;

impl Histogram {
    #[inline(always)]
    pub fn record(&self, _value: u64) {}
    pub fn count(&self) -> u64 {
        0
    }
    pub fn sum(&self) -> u64 {
        0
    }
    pub fn max(&self) -> u64 {
        0
    }
    pub fn mean(&self) -> f64 {
        0.0
    }
    pub fn quantile(&self, _q: f64) -> u64 {
        0
    }
    pub fn noop() -> &'static Histogram {
        &Histogram
    }
}

/// See the instrumented `SpanStat`; here a unit type.
#[derive(Debug, Default)]
pub struct SpanStat;

impl SpanStat {
    pub fn durations(&self) -> &Histogram {
        &Histogram
    }
    pub fn name(&self) -> &'static str {
        ""
    }
}

/// See the instrumented `SpanGuard`; here a unit type with no `Drop`.
#[derive(Debug)]
pub struct SpanGuard;

impl SpanGuard {
    #[inline(always)]
    pub fn noop() -> SpanGuard {
        SpanGuard
    }
}

/// See the instrumented `Timer`; here a unit type.
#[derive(Debug)]
pub struct Timer;

impl Timer {
    #[inline(always)]
    pub fn start() -> Timer {
        Timer
    }
    #[inline(always)]
    pub fn observe(&self, _hist: &Histogram) {}
}

/// See the instrumented `Registry`; here a unit type.
#[derive(Debug, Default)]
pub struct Registry;

impl Registry {
    pub fn counter(&self, _name: &'static str) -> &'static Counter {
        &Counter
    }
    pub fn gauge(&self, _name: &'static str) -> &'static Gauge {
        &Gauge
    }
    pub fn histogram(&self, _name: &'static str) -> &'static Histogram {
        &Histogram
    }
    pub fn span(&self, _name: &'static str) -> &'static SpanStat {
        &SpanStat
    }
    pub fn counters(&self) -> Vec<(&'static str, &'static Counter)> {
        Vec::new()
    }
    pub fn gauges(&self) -> Vec<(&'static str, &'static Gauge)> {
        Vec::new()
    }
    pub fn histograms(&self) -> Vec<(&'static str, &'static Histogram)> {
        Vec::new()
    }
    pub fn spans(&self) -> Vec<(&'static str, &'static SpanStat)> {
        Vec::new()
    }
}

#[inline(always)]
pub fn enabled() -> bool {
    false
}

#[inline(always)]
pub fn set_enabled(_on: bool) {}

pub fn registry() -> &'static Registry {
    &Registry
}

#[inline(always)]
pub fn reset() {}

#[inline(always)]
pub fn span_enter(_stat: &'static SpanStat) -> SpanGuard {
    SpanGuard
}

#[inline(always)]
pub fn label_thread(_label: &str) {}

#[inline(always)]
pub fn trace_active() -> bool {
    false
}

#[inline(always)]
pub fn start_trace() {}

/// An empty, still-valid chrome trace document.
pub fn finish_trace() -> String {
    "{\"traceEvents\":[]}\n".to_string()
}

/// An empty, still-valid snapshot object.
pub fn snapshot_json(indent: &str) -> String {
    format!(
        "{{\n{indent}  \"counters\": {{}},\n{indent}  \"gauges\": {{}},\n\
         {indent}  \"histograms\": {{}},\n{indent}  \"spans\": {{}}\n{indent}}}"
    )
}

/// A report that says why it is empty.
pub fn render_text() -> String {
    "== obs report ==\n(built without the `obs` feature; no metrics recorded)\n".to_string()
}
