//! In-house observability layer for the thrubarrier pipeline.
//!
//! Everything the workspace records at runtime flows through this crate:
//!
//! * **Counters** and **gauges** — single relaxed atomics (cache
//!   hit/miss tallies, the scoring-service queue depth).
//! * **Histograms** — 64 log2 buckets plus count/sum/max, all atomic
//!   (coalesced batch sizes, request latencies).
//! * **Spans** — RAII wall-clock timers ([`span!`]) that feed a latency
//!   histogram per span name and maintain a thread-local span stack, so
//!   nested stage timings keep their parent relationship.
//!
//! All of it registers in one global [`Registry`]. Registration (the
//! first call through a [`counter!`]/[`span!`] site) takes a short lock;
//! after that the hot path touches only the leaked `&'static` metric's
//! atomics — no locks, no allocation.
//!
//! # Feature gating
//!
//! The whole layer compiles to **true no-ops** unless the `obs` cargo
//! feature is on: every type becomes zero-sized, every method an empty
//! inline function, and the macros fold to constants (they branch on
//! [`COMPILED`], a `const bool`, so the instrumented arm is removed at
//! compile time). With the feature on, recording is additionally gated
//! by one process-wide flag read with a single relaxed atomic load
//! ([`enabled`]); [`set_enabled`]`(false)` turns an instrumented binary
//! back into (almost) the uninstrumented one at runtime.
//!
//! # Exporters
//!
//! * [`snapshot_json`] — a structured metrics snapshot (counters,
//!   gauges, histogram quantiles, span totals) for embedding in bench
//!   artifacts such as `BENCH_pipeline.json`.
//! * [`start_trace`] / [`finish_trace`] — a chrome://tracing /
//!   [Perfetto](https://ui.perfetto.dev) JSON trace of every span that
//!   ends while tracing is active, with one track per thread
//!   (labelled via [`label_thread`]).
//! * [`render_text`] — a plain-text report for diagnostics binaries.

#[cfg(feature = "obs")]
mod imp;
#[cfg(feature = "obs")]
pub use imp::{
    enabled, finish_trace, label_thread, registry, render_text, reset, set_enabled, snapshot_json,
    span_enter, start_trace, trace_active, Counter, Gauge, Histogram, Registry, SpanGuard,
    SpanStat, Timer,
};

#[cfg(not(feature = "obs"))]
mod noop;
#[cfg(not(feature = "obs"))]
pub use noop::{
    enabled, finish_trace, label_thread, registry, render_text, reset, set_enabled, snapshot_json,
    span_enter, start_trace, trace_active, Counter, Gauge, Histogram, Registry, SpanGuard,
    SpanStat, Timer,
};

/// `true` when the crate was built with the `obs` feature. A `const`, so
/// `if COMPILED { .. } else { .. }` folds at compile time — this is what
/// makes the macros below zero-cost in uninstrumented builds.
pub const COMPILED: bool = cfg!(feature = "obs");

/// A registered [`Counter`], resolved once per call site.
///
/// ```
/// thrubarrier_obs::counter!("doc.example.hits").incr();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        if $crate::COMPILED {
            static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            *SLOT.get_or_init(|| $crate::registry().counter($name))
        } else {
            $crate::Counter::noop()
        }
    };
}

/// A registered [`Gauge`], resolved once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        if $crate::COMPILED {
            static SLOT: ::std::sync::OnceLock<&'static $crate::Gauge> =
                ::std::sync::OnceLock::new();
            *SLOT.get_or_init(|| $crate::registry().gauge($name))
        } else {
            $crate::Gauge::noop()
        }
    };
}

/// A registered [`Histogram`], resolved once per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {
        if $crate::COMPILED {
            static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            *SLOT.get_or_init(|| $crate::registry().histogram($name))
        } else {
            $crate::Histogram::noop()
        }
    };
}

/// Opens an RAII span: wall-clock time from here to the guard's drop is
/// recorded under `$name` (and emitted as a chrome-trace slice while
/// tracing is active). Bind the guard or it closes immediately:
///
/// ```
/// let _span = thrubarrier_obs::span!("doc.example.stage");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::COMPILED {
            $crate::span_enter({
                static SLOT: ::std::sync::OnceLock<&'static $crate::SpanStat> =
                    ::std::sync::OnceLock::new();
                *SLOT.get_or_init(|| $crate::registry().span($name))
            })
        } else {
            $crate::SpanGuard::noop()
        }
    };
}
