//! Lock-free metric primitives: counters, gauges, log2-bucketed
//! histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event tally.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (relaxed; no-op while recording is disabled).
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if super::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// The sink all macro call sites collapse to in uninstrumented
    /// builds ([`crate::COMPILED`] = `false`); never registered.
    pub fn noop() -> &'static Counter {
        static NOOP: Counter = Counter::new();
        &NOOP
    }
}

/// A signed level that moves both ways (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Adds `delta` (may be negative).
    #[inline(always)]
    pub fn add(&self, delta: i64) {
        if super::enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline(always)]
    pub fn decr(&self) {
        self.add(-1);
    }

    /// Overwrites the level.
    #[inline(always)]
    pub fn set(&self, value: i64) {
        if super::enabled() {
            self.value.store(value, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// See [`Counter::noop`].
    pub fn noop() -> &'static Gauge {
        static NOOP: Gauge = Gauge::new();
        &NOOP
    }
}

const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, batch sizes, queue lengths).
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`, so quantiles are exact to within a factor of two —
/// plenty to tell a 50 µs drain from a 5 ms one — while `record` stays
/// three relaxed atomic RMWs with no locking and no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub(crate) const fn new() -> Self {
        // A `const` block repeats per array element, sidestepping the
        // missing `Copy` on `AtomicU64`.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `value`.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample (no-op while recording is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !super::enabled() {
            return;
        }
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `q·count`, clamped
    /// to the true maximum. Exact to within the bucket's factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i == 0 { 0 } else { 1u64 << i };
                return upper.min(self.max());
            }
        }
        self.max()
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// See [`Counter::noop`].
    pub fn noop() -> &'static Histogram {
        static NOOP: Histogram = Histogram::new();
        &NOOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_max_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        // p50 lands in the bucket of 3 → upper bound 4.
        assert_eq!(h.quantile(0.5), 4);
        // p100 is clamped to the true max, not the bucket bound.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn counter_and_gauge_move_as_told() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.incr();
        g.incr();
        g.decr();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }
}
