//! The global metric registry.
//!
//! Registration interns each name once behind a short mutex and leaks
//! the metric, so call sites hold `&'static` handles and the hot path
//! never touches the registry again — recording is pure atomics.

use super::metrics::{Counter, Gauge, Histogram};
use super::span::SpanStat;
use std::sync::{Mutex, OnceLock};

/// One name → leaked-metric table. Linear search: the workspace
/// registers a few dozen metrics, each exactly once per process.
#[derive(Debug, Default)]
struct Table<T: 'static> {
    entries: Mutex<Vec<(&'static str, &'static T)>>,
}

impl<T: Default> Table<T> {
    fn intern(&self, name: &'static str) -> &'static T {
        let mut entries = self.entries.lock().expect("obs registry poisoned");
        if let Some(&(_, hit)) = entries.iter().find(|(n, _)| *n == name) {
            return hit;
        }
        let leaked: &'static T = Box::leak(Box::default());
        entries.push((name, leaked));
        leaked
    }

    /// Name-sorted snapshot of the registered entries.
    fn sorted(&self) -> Vec<(&'static str, &'static T)> {
        let mut out = self.entries.lock().expect("obs registry poisoned").clone();
        out.sort_by_key(|(n, _)| *n);
        out
    }
}

// `Clone` for the snapshot; derive needs `T: Clone` otherwise.
impl<T> Table<T> {
    fn with_each(&self, mut f: impl FnMut(&'static T)) {
        for &(_, m) in self.entries.lock().expect("obs registry poisoned").iter() {
            f(m);
        }
    }
}

/// The process-wide registry behind [`registry`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: Table<Counter>,
    gauges: Table<Gauge>,
    histograms: Table<Histogram>,
    spans: Table<SpanStat>,
}

impl Registry {
    /// The counter registered under `name` (registered on first call).
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.counters.intern(name)
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        self.gauges.intern(name)
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.histograms.intern(name)
    }

    /// The span statistic registered under `name`.
    pub fn span(&self, name: &'static str) -> &'static SpanStat {
        let stat = self.spans.intern(name);
        stat.set_name(name);
        stat
    }

    /// Name-sorted counters.
    pub fn counters(&self) -> Vec<(&'static str, &'static Counter)> {
        self.counters.sorted()
    }

    /// Name-sorted gauges.
    pub fn gauges(&self) -> Vec<(&'static str, &'static Gauge)> {
        self.gauges.sorted()
    }

    /// Name-sorted histograms.
    pub fn histograms(&self) -> Vec<(&'static str, &'static Histogram)> {
        self.histograms.sorted()
    }

    /// Name-sorted span statistics.
    pub fn spans(&self) -> Vec<(&'static str, &'static SpanStat)> {
        self.spans.sorted()
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Zeroes every registered metric (names stay registered). Exporters
/// call this to scope a snapshot to one measured run.
pub fn reset() {
    let r = registry();
    r.counters.with_each(Counter::reset);
    r.gauges.with_each(Gauge::reset);
    r.histograms.with_each(Histogram::reset);
    r.spans.with_each(SpanStat::reset);
}
