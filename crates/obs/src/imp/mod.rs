//! The instrumented implementation (compiled with the `obs` feature).

mod export;
mod metrics;
mod registry;
mod span;

pub use export::{render_text, snapshot_json};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{registry, reset, Registry};
pub use span::{
    finish_trace, label_thread, span_enter, start_trace, trace_active, SpanGuard, SpanStat, Timer,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide recording switch; one relaxed load on every hot-path
/// record. Defaults to on — building with `--features obs` is itself
/// the opt-in.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether recording is currently on (single relaxed atomic load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Off, an instrumented binary
/// pays one relaxed load + branch per call site and nothing else.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
