//! RAII span timers, the thread-local span stack, and chrome-trace
//! event collection.

use super::metrics::Histogram;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated timing of one span name: a latency histogram in
/// nanoseconds (count and total ride along inside it).
#[derive(Debug, Default)]
pub struct SpanStat {
    name: OnceLock<&'static str>,
    durations: Histogram,
}

impl SpanStat {
    /// The duration histogram (nanoseconds).
    pub fn durations(&self) -> &Histogram {
        &self.durations
    }

    /// The name this statistic was registered under.
    pub fn name(&self) -> &'static str {
        self.name.get().copied().unwrap_or("")
    }

    /// Stamped by the registry at intern time so the drop path never
    /// has to look the name up.
    pub(crate) fn set_name(&self, name: &'static str) {
        let _ = self.name.set(name);
    }

    pub(crate) fn reset(&self) {
        self.durations.reset();
    }
}

/// Lightweight manual timer for latencies that do not nest like spans
/// (e.g. request submit → reply across threads). Zero-sized and inert
/// in uninstrumented builds; holds nothing unless recording was enabled
/// at [`Timer::start`].
#[derive(Debug)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Starts the timer (inert while recording is disabled).
    #[inline]
    pub fn start() -> Timer {
        Timer(super::enabled().then(Instant::now))
    }

    /// Records the elapsed nanoseconds into `hist`.
    #[inline]
    pub fn observe(&self, hist: &Histogram) {
        if let Some(t0) = self.0 {
            hist.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Thread identity and the span stack.

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// Small dense id for this thread (chrome-trace `tid`).
    static TID: Cell<u32> = const { Cell::new(0) };
    /// Names of the spans currently open on this thread, outermost
    /// first. Gives every trace slice its parent for free.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Buffered trace events, flushed to [`TRACE_SINK`] in chunks and
    /// on thread exit (the `Drop` of `TraceBuf`).
    static TRACE_BUF: RefCell<TraceBuf> = const { RefCell::new(TraceBuf { events: Vec::new() }) };
}

fn tid() -> u32 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Names this thread's track in exported traces (e.g. `worker-3`).
pub fn label_thread(label: &str) {
    thread_labels()
        .lock()
        .expect("obs thread labels poisoned")
        .push((tid(), label.to_string()));
}

fn thread_labels() -> &'static Mutex<Vec<(u32, String)>> {
    static LABELS: OnceLock<Mutex<Vec<(u32, String)>>> = OnceLock::new();
    LABELS.get_or_init(Mutex::default)
}

// ---------------------------------------------------------------------
// Trace event collection.

/// One completed span occurrence destined for the chrome trace.
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub(crate) name: &'static str,
    pub(crate) parent: Option<&'static str>,
    pub(crate) tid: u32,
    pub(crate) start_ns: u64,
    pub(crate) dur_ns: u64,
}

struct TraceBuf {
    events: Vec<TraceEvent>,
}

impl TraceBuf {
    const FLUSH_AT: usize = 256;
}

impl Drop for TraceBuf {
    fn drop(&mut self) {
        // Thread exit: hand any tail of events to the global sink so
        // scoped worker threads never lose slices.
        if !self.events.is_empty() {
            flush_into_sink(&mut self.events);
        }
    }
}

fn flush_into_sink(events: &mut Vec<TraceEvent>) {
    trace_sink()
        .lock()
        .expect("obs trace sink poisoned")
        .append(events);
}

fn trace_sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(Mutex::default)
}

static TRACING: AtomicBool = AtomicBool::new(false);

/// Whether a trace collection window is open.
#[inline]
pub fn trace_active() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// The process time origin all trace timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Opens a trace collection window: spans that *end* between here and
/// [`finish_trace`] become chrome-trace slices. Discards events from
/// any earlier window.
pub fn start_trace() {
    epoch(); // pin the time origin before the first event
    trace_sink()
        .lock()
        .expect("obs trace sink poisoned")
        .clear();
    TRACING.store(true, Ordering::Relaxed);
}

/// Closes the trace window and renders the collected events as
/// chrome://tracing JSON (load in `chrome://tracing` or Perfetto).
///
/// Threads still running keep up to one unflushed buffer chunk; join
/// workers before calling this (the exporters in this workspace do).
pub fn finish_trace() -> String {
    TRACING.store(false, Ordering::Relaxed);
    TRACE_BUF.with(|b| {
        let buf = &mut *b.borrow_mut();
        flush_into_sink(&mut buf.events);
    });
    let events = std::mem::take(&mut *trace_sink().lock().expect("obs trace sink poisoned"));
    let labels = thread_labels()
        .lock()
        .expect("obs thread labels poisoned")
        .clone();
    super::export::chrome_trace_json(&events, &labels)
}

// ---------------------------------------------------------------------
// The RAII guard.

/// Open span handle returned by [`crate::span!`]; records on drop.
#[derive(Debug)]
#[must_use = "a span closes when its guard drops; bind it with `let _span = ...`"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    stat: &'static SpanStat,
    parent: Option<&'static str>,
    start: Instant,
}

impl SpanGuard {
    /// The inert guard every `span!` site folds to in uninstrumented
    /// builds.
    #[inline(always)]
    pub fn noop() -> SpanGuard {
        SpanGuard { active: None }
    }
}

/// Enters a span (the expansion of [`crate::span!`]). One relaxed load
/// when recording is disabled.
#[inline]
pub fn span_enter(stat: &'static SpanStat) -> SpanGuard {
    if !super::enabled() {
        return SpanGuard::noop();
    }
    let name = stat.name();
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(name);
        parent
    });
    SpanGuard {
        active: Some(ActiveSpan {
            stat,
            parent,
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        span.stat.durations.record(dur_ns);
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if trace_active() {
            let start_ns = span.start.saturating_duration_since(epoch()).as_nanos() as u64;
            let event = TraceEvent {
                name: span.stat.name(),
                parent: span.parent,
                tid: tid(),
                start_ns,
                dur_ns,
            };
            TRACE_BUF.with(|b| {
                let buf = &mut *b.borrow_mut();
                buf.events.push(event);
                // Flush on batch size, and whenever this thread's
                // outermost span closes: scoped threads
                // (`std::thread::scope`) signal completion when their
                // closure returns, *before* TLS destructors run, so the
                // `TraceBuf` drop flush alone can lose a worker's tail
                // events to a `finish_trace` racing the thread's exit.
                if buf.events.len() >= TraceBuf::FLUSH_AT
                    || SPAN_STACK.with(|s| s.borrow().is_empty())
                {
                    flush_into_sink(&mut buf.events);
                }
            });
        }
    }
}
