//! Exporters: chrome://tracing JSON and the structured metrics
//! snapshot.

use super::metrics::Histogram;
use super::registry::registry;
use super::span::TraceEvent;
use std::fmt::Write;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders collected span events as a chrome://tracing "trace event
/// format" document: one complete (`ph: "X"`) slice per span
/// occurrence, one track per thread, thread names as metadata events.
/// Timestamps are microseconds from the process time origin.
pub(crate) fn chrome_trace_json(events: &[TraceEvent], labels: &[(u32, String)]) -> String {
    let mut s = String::from("{\"traceEvents\":[\n");
    s.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"thrubarrier\"}}",
    );
    for (tid, label) in labels {
        let _ = write!(
            s,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(label)
        );
    }
    for e in events {
        let _ = write!(
            s,
            ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3}",
            esc(e.name),
            e.tid,
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
        );
        match e.parent {
            Some(p) => {
                let _ = write!(s, ",\"args\":{{\"parent\":\"{}\"}}}}", esc(p));
            }
            None => s.push('}'),
        }
    }
    s.push_str("\n]}\n");
    s
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.sum(),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
        h.max()
    )
}

/// The structured metrics snapshot as a JSON object (no trailing
/// newline): counters, gauges, histograms (with log2-bucket quantiles)
/// and span totals. `indent` is prepended to every line after the
/// first, so the object can be embedded at any nesting depth of a
/// hand-rendered document (e.g. `BENCH_pipeline.json`).
pub fn snapshot_json(indent: &str) -> String {
    let r = registry();
    let mut s = String::from("{\n");
    let sections: [(&str, Vec<(&'static str, String)>); 4] = [
        (
            "counters",
            r.counters()
                .into_iter()
                .map(|(n, c)| (n, c.get().to_string()))
                .collect(),
        ),
        (
            "gauges",
            r.gauges()
                .into_iter()
                .map(|(n, g)| (n, g.get().to_string()))
                .collect(),
        ),
        (
            "histograms",
            r.histograms()
                .into_iter()
                .map(|(n, h)| (n, histogram_json(h)))
                .collect(),
        ),
        (
            "spans",
            r.spans()
                .into_iter()
                .map(|(n, sp)| (n, histogram_json(sp.durations())))
                .collect(),
        ),
    ];
    let n_sections = sections.len();
    for (si, (section, entries)) in sections.into_iter().enumerate() {
        let _ = write!(s, "{indent}  \"{section}\": {{");
        let n = entries.len();
        for (i, (name, value)) in entries.into_iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = write!(s, "\n{indent}    \"{}\": {value}{comma}", esc(name));
        }
        if n > 0 {
            let _ = write!(s, "\n{indent}  ");
        }
        let comma = if si + 1 < n_sections { "," } else { "" };
        let _ = writeln!(s, "}}{comma}");
    }
    let _ = write!(s, "{indent}}}");
    s
}

/// A plain-text report of every registered metric, for diagnostic
/// binaries and examples.
pub fn render_text() -> String {
    let r = registry();
    let mut s = String::from("== obs report ==\n");
    let counters = r.counters();
    if !counters.is_empty() {
        s.push_str("counters:\n");
        for (name, c) in counters {
            let _ = writeln!(s, "  {name:<40} {}", c.get());
        }
    }
    let gauges = r.gauges();
    if !gauges.is_empty() {
        s.push_str("gauges:\n");
        for (name, g) in gauges {
            let _ = writeln!(s, "  {name:<40} {}", g.get());
        }
    }
    let histograms = r.histograms();
    if !histograms.is_empty() {
        s.push_str("histograms:\n");
        for (name, h) in histograms {
            let _ = writeln!(
                s,
                "  {name:<40} n={} mean={:.1} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max()
            );
        }
    }
    let spans = r.spans();
    if !spans.is_empty() {
        s.push_str("spans:\n");
        for (name, sp) in spans {
            let h = sp.durations();
            let _ = writeln!(
                s,
                "  {name:<40} n={} total={:.3}ms mean={:.3}ms p99~{:.3}ms",
                h.count(),
                h.sum() as f64 / 1e6,
                h.mean() / 1e6,
                h.quantile(0.99) as f64 / 1e6
            );
        }
    }
    s
}
