/root/repo/target/debug/examples/cross_domain_sensing-92c14345a7557b9a.d: examples/cross_domain_sensing.rs

/root/repo/target/debug/examples/libcross_domain_sensing-92c14345a7557b9a.rmeta: examples/cross_domain_sensing.rs

examples/cross_domain_sensing.rs:
