/root/repo/target/debug/examples/curve_debug-f625be58e3bb1c27.d: crates/defense/examples/curve_debug.rs

/root/repo/target/debug/examples/curve_debug-f625be58e3bb1c27: crates/defense/examples/curve_debug.rs

crates/defense/examples/curve_debug.rs:
