/root/repo/target/debug/examples/quickstart-a51da63bfe4bdfaa.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a51da63bfe4bdfaa: examples/quickstart.rs

examples/quickstart.rs:
