/root/repo/target/debug/examples/guard_deployment-95860e6dd71cf804.d: examples/guard_deployment.rs

/root/repo/target/debug/examples/guard_deployment-95860e6dd71cf804: examples/guard_deployment.rs

examples/guard_deployment.rs:
