/root/repo/target/debug/examples/curve_debug-b8fdabf88b0ca7d8.d: crates/defense/examples/curve_debug.rs

/root/repo/target/debug/examples/curve_debug-b8fdabf88b0ca7d8: crates/defense/examples/curve_debug.rs

crates/defense/examples/curve_debug.rs:
