/root/repo/target/debug/examples/detection_eval-ba0fa89b8992438a.d: examples/detection_eval.rs Cargo.toml

/root/repo/target/debug/examples/libdetection_eval-ba0fa89b8992438a.rmeta: examples/detection_eval.rs Cargo.toml

examples/detection_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
