/root/repo/target/debug/examples/brnn_debug-429f443f6e76090a.d: crates/defense/examples/brnn_debug.rs

/root/repo/target/debug/examples/brnn_debug-429f443f6e76090a: crates/defense/examples/brnn_debug.rs

crates/defense/examples/brnn_debug.rs:
