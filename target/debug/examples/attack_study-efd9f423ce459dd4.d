/root/repo/target/debug/examples/attack_study-efd9f423ce459dd4.d: examples/attack_study.rs

/root/repo/target/debug/examples/attack_study-efd9f423ce459dd4: examples/attack_study.rs

examples/attack_study.rs:
