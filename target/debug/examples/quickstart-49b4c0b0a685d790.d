/root/repo/target/debug/examples/quickstart-49b4c0b0a685d790.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-49b4c0b0a685d790.rmeta: examples/quickstart.rs

examples/quickstart.rs:
