/root/repo/target/debug/examples/selection_debug-f876ea9534cf401e.d: crates/defense/examples/selection_debug.rs

/root/repo/target/debug/examples/libselection_debug-f876ea9534cf401e.rmeta: crates/defense/examples/selection_debug.rs

crates/defense/examples/selection_debug.rs:
