/root/repo/target/debug/examples/detection_eval-ee7e471f7671c5c6.d: examples/detection_eval.rs

/root/repo/target/debug/examples/detection_eval-ee7e471f7671c5c6: examples/detection_eval.rs

examples/detection_eval.rs:
