/root/repo/target/debug/examples/profile_act-3e7db10ffe0683d4.d: crates/nn/examples/profile_act.rs

/root/repo/target/debug/examples/profile_act-3e7db10ffe0683d4: crates/nn/examples/profile_act.rs

crates/nn/examples/profile_act.rs:
