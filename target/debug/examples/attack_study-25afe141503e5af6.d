/root/repo/target/debug/examples/attack_study-25afe141503e5af6.d: examples/attack_study.rs

/root/repo/target/debug/examples/attack_study-25afe141503e5af6: examples/attack_study.rs

examples/attack_study.rs:
