/root/repo/target/debug/examples/attack_study-648a9a6b5d5ae715.d: examples/attack_study.rs Cargo.toml

/root/repo/target/debug/examples/libattack_study-648a9a6b5d5ae715.rmeta: examples/attack_study.rs Cargo.toml

examples/attack_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
