/root/repo/target/debug/examples/cross_domain_sensing-e280dc61c2f682dd.d: examples/cross_domain_sensing.rs Cargo.toml

/root/repo/target/debug/examples/libcross_domain_sensing-e280dc61c2f682dd.rmeta: examples/cross_domain_sensing.rs Cargo.toml

examples/cross_domain_sensing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
