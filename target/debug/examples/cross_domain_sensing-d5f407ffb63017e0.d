/root/repo/target/debug/examples/cross_domain_sensing-d5f407ffb63017e0.d: examples/cross_domain_sensing.rs

/root/repo/target/debug/examples/cross_domain_sensing-d5f407ffb63017e0: examples/cross_domain_sensing.rs

examples/cross_domain_sensing.rs:
