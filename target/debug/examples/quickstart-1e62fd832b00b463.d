/root/repo/target/debug/examples/quickstart-1e62fd832b00b463.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1e62fd832b00b463: examples/quickstart.rs

examples/quickstart.rs:
