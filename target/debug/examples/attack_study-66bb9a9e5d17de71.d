/root/repo/target/debug/examples/attack_study-66bb9a9e5d17de71.d: examples/attack_study.rs

/root/repo/target/debug/examples/libattack_study-66bb9a9e5d17de71.rmeta: examples/attack_study.rs

examples/attack_study.rs:
