/root/repo/target/debug/examples/export_audio-bfbb1f86e3d9c9df.d: examples/export_audio.rs

/root/repo/target/debug/examples/libexport_audio-bfbb1f86e3d9c9df.rmeta: examples/export_audio.rs

examples/export_audio.rs:
