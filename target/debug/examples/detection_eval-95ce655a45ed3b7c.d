/root/repo/target/debug/examples/detection_eval-95ce655a45ed3b7c.d: examples/detection_eval.rs

/root/repo/target/debug/examples/detection_eval-95ce655a45ed3b7c: examples/detection_eval.rs

examples/detection_eval.rs:
