/root/repo/target/debug/examples/brnn_debug-5ff8ef216a947099.d: crates/defense/examples/brnn_debug.rs Cargo.toml

/root/repo/target/debug/examples/libbrnn_debug-5ff8ef216a947099.rmeta: crates/defense/examples/brnn_debug.rs Cargo.toml

crates/defense/examples/brnn_debug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
