/root/repo/target/debug/examples/curve_debug-5167ac2af659ff92.d: crates/defense/examples/curve_debug.rs

/root/repo/target/debug/examples/libcurve_debug-5167ac2af659ff92.rmeta: crates/defense/examples/curve_debug.rs

crates/defense/examples/curve_debug.rs:
