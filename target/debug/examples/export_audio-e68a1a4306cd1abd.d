/root/repo/target/debug/examples/export_audio-e68a1a4306cd1abd.d: examples/export_audio.rs

/root/repo/target/debug/examples/export_audio-e68a1a4306cd1abd: examples/export_audio.rs

examples/export_audio.rs:
