/root/repo/target/debug/examples/guard_deployment-2f59128abd63cefa.d: examples/guard_deployment.rs

/root/repo/target/debug/examples/libguard_deployment-2f59128abd63cefa.rmeta: examples/guard_deployment.rs

examples/guard_deployment.rs:
