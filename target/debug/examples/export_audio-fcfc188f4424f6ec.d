/root/repo/target/debug/examples/export_audio-fcfc188f4424f6ec.d: examples/export_audio.rs Cargo.toml

/root/repo/target/debug/examples/libexport_audio-fcfc188f4424f6ec.rmeta: examples/export_audio.rs Cargo.toml

examples/export_audio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
