/root/repo/target/debug/examples/brnn_debug-089ec13011e71302.d: crates/defense/examples/brnn_debug.rs

/root/repo/target/debug/examples/libbrnn_debug-089ec13011e71302.rmeta: crates/defense/examples/brnn_debug.rs

crates/defense/examples/brnn_debug.rs:
