/root/repo/target/debug/examples/brnn_debug-1745346d2cd36ccd.d: crates/defense/examples/brnn_debug.rs

/root/repo/target/debug/examples/brnn_debug-1745346d2cd36ccd: crates/defense/examples/brnn_debug.rs

crates/defense/examples/brnn_debug.rs:
