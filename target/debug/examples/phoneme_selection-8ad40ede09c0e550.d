/root/repo/target/debug/examples/phoneme_selection-8ad40ede09c0e550.d: examples/phoneme_selection.rs

/root/repo/target/debug/examples/phoneme_selection-8ad40ede09c0e550: examples/phoneme_selection.rs

examples/phoneme_selection.rs:
