/root/repo/target/debug/examples/cross_domain_sensing-4a0a6e2ad13cdce7.d: examples/cross_domain_sensing.rs

/root/repo/target/debug/examples/cross_domain_sensing-4a0a6e2ad13cdce7: examples/cross_domain_sensing.rs

examples/cross_domain_sensing.rs:
