/root/repo/target/debug/examples/export_audio-f6a85fe271b75735.d: examples/export_audio.rs

/root/repo/target/debug/examples/export_audio-f6a85fe271b75735: examples/export_audio.rs

examples/export_audio.rs:
