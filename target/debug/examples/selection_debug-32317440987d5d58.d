/root/repo/target/debug/examples/selection_debug-32317440987d5d58.d: crates/defense/examples/selection_debug.rs

/root/repo/target/debug/examples/selection_debug-32317440987d5d58: crates/defense/examples/selection_debug.rs

crates/defense/examples/selection_debug.rs:
