/root/repo/target/debug/examples/phoneme_selection-b19190aec5b9ada9.d: examples/phoneme_selection.rs Cargo.toml

/root/repo/target/debug/examples/libphoneme_selection-b19190aec5b9ada9.rmeta: examples/phoneme_selection.rs Cargo.toml

examples/phoneme_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
