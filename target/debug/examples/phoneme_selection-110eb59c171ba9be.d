/root/repo/target/debug/examples/phoneme_selection-110eb59c171ba9be.d: examples/phoneme_selection.rs

/root/repo/target/debug/examples/phoneme_selection-110eb59c171ba9be: examples/phoneme_selection.rs

examples/phoneme_selection.rs:
