/root/repo/target/debug/examples/profile_predict-fcf775766d6781d3.d: crates/nn/examples/profile_predict.rs

/root/repo/target/debug/examples/profile_predict-fcf775766d6781d3: crates/nn/examples/profile_predict.rs

crates/nn/examples/profile_predict.rs:
