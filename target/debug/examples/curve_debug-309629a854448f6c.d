/root/repo/target/debug/examples/curve_debug-309629a854448f6c.d: crates/defense/examples/curve_debug.rs Cargo.toml

/root/repo/target/debug/examples/libcurve_debug-309629a854448f6c.rmeta: crates/defense/examples/curve_debug.rs Cargo.toml

crates/defense/examples/curve_debug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
