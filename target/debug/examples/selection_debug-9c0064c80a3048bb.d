/root/repo/target/debug/examples/selection_debug-9c0064c80a3048bb.d: crates/defense/examples/selection_debug.rs

/root/repo/target/debug/examples/selection_debug-9c0064c80a3048bb: crates/defense/examples/selection_debug.rs

crates/defense/examples/selection_debug.rs:
