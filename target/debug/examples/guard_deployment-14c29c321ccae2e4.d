/root/repo/target/debug/examples/guard_deployment-14c29c321ccae2e4.d: examples/guard_deployment.rs

/root/repo/target/debug/examples/guard_deployment-14c29c321ccae2e4: examples/guard_deployment.rs

examples/guard_deployment.rs:
