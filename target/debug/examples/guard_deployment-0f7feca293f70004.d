/root/repo/target/debug/examples/guard_deployment-0f7feca293f70004.d: examples/guard_deployment.rs Cargo.toml

/root/repo/target/debug/examples/libguard_deployment-0f7feca293f70004.rmeta: examples/guard_deployment.rs Cargo.toml

examples/guard_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
