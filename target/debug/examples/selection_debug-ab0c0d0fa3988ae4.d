/root/repo/target/debug/examples/selection_debug-ab0c0d0fa3988ae4.d: crates/defense/examples/selection_debug.rs Cargo.toml

/root/repo/target/debug/examples/libselection_debug-ab0c0d0fa3988ae4.rmeta: crates/defense/examples/selection_debug.rs Cargo.toml

crates/defense/examples/selection_debug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
