/root/repo/target/debug/examples/detection_eval-d97f7f7cae4aa051.d: examples/detection_eval.rs

/root/repo/target/debug/examples/libdetection_eval-d97f7f7cae4aa051.rmeta: examples/detection_eval.rs

examples/detection_eval.rs:
