/root/repo/target/debug/examples/phoneme_selection-031124d64944b260.d: examples/phoneme_selection.rs

/root/repo/target/debug/examples/libphoneme_selection-031124d64944b260.rmeta: examples/phoneme_selection.rs

examples/phoneme_selection.rs:
