/root/repo/target/debug/deps/bench_json-ec394754c105faae.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/debug/deps/bench_json-ec394754c105faae: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
