/root/repo/target/debug/deps/thrubarrier_attack-bab909bdaac3f6b8.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/libthrubarrier_attack-bab909bdaac3f6b8.rlib: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/libthrubarrier_attack-bab909bdaac3f6b8.rmeta: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
