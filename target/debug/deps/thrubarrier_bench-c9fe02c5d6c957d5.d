/root/repo/target/debug/deps/thrubarrier_bench-c9fe02c5d6c957d5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/thrubarrier_bench-c9fe02c5d6c957d5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
