/root/repo/target/debug/deps/properties-7c7950744b300267.d: crates/phoneme/tests/properties.rs

/root/repo/target/debug/deps/properties-7c7950744b300267: crates/phoneme/tests/properties.rs

crates/phoneme/tests/properties.rs:
