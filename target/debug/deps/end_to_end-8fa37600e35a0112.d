/root/repo/target/debug/deps/end_to_end-8fa37600e35a0112.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8fa37600e35a0112: tests/end_to_end.rs

tests/end_to_end.rs:
