/root/repo/target/debug/deps/thrubarrier_phoneme-63f0b494bdd7aae6.d: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

/root/repo/target/debug/deps/thrubarrier_phoneme-63f0b494bdd7aae6: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

crates/phoneme/src/lib.rs:
crates/phoneme/src/command.rs:
crates/phoneme/src/common.rs:
crates/phoneme/src/corpus.rs:
crates/phoneme/src/inventory.rs:
crates/phoneme/src/speaker.rs:
crates/phoneme/src/synth.rs:
