/root/repo/target/debug/deps/thrubarrier_vibration-2678f6a5338854ca.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/libthrubarrier_vibration-2678f6a5338854ca.rlib: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/libthrubarrier_vibration-2678f6a5338854ca.rmeta: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
