/root/repo/target/debug/deps/properties-65d76f0f923c6b99.d: crates/vibration/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-65d76f0f923c6b99.rmeta: crates/vibration/tests/properties.rs Cargo.toml

crates/vibration/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
