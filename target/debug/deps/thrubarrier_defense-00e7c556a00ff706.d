/root/repo/target/debug/deps/thrubarrier_defense-00e7c556a00ff706.d: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/features.rs crates/defense/src/guard.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_defense-00e7c556a00ff706.rmeta: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/features.rs crates/defense/src/guard.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs Cargo.toml

crates/defense/src/lib.rs:
crates/defense/src/detector.rs:
crates/defense/src/features.rs:
crates/defense/src/guard.rs:
crates/defense/src/segmentation.rs:
crates/defense/src/selection.rs:
crates/defense/src/sync.rs:
crates/defense/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
