/root/repo/target/debug/deps/thrubarrier_bench-63b988829e6b232d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_bench-63b988829e6b232d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
