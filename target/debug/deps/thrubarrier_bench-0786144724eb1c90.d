/root/repo/target/debug/deps/thrubarrier_bench-0786144724eb1c90.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthrubarrier_bench-0786144724eb1c90.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthrubarrier_bench-0786144724eb1c90.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
