/root/repo/target/debug/deps/thrubarrier-b6bdec0d2e0632d8.d: src/lib.rs

/root/repo/target/debug/deps/thrubarrier-b6bdec0d2e0632d8: src/lib.rs

src/lib.rs:
