/root/repo/target/debug/deps/profile_brnn-55abf5737c2a8113.d: crates/bench/src/bin/profile_brnn.rs

/root/repo/target/debug/deps/profile_brnn-55abf5737c2a8113: crates/bench/src/bin/profile_brnn.rs

crates/bench/src/bin/profile_brnn.rs:
