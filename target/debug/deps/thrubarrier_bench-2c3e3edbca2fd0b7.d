/root/repo/target/debug/deps/thrubarrier_bench-2c3e3edbca2fd0b7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthrubarrier_bench-2c3e3edbca2fd0b7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
