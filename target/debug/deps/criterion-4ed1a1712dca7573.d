/root/repo/target/debug/deps/criterion-4ed1a1712dca7573.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4ed1a1712dca7573.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
