/root/repo/target/debug/deps/thrubarrier_attack-3c4b2c64b70d7e46.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/libthrubarrier_attack-3c4b2c64b70d7e46.rmeta: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
