/root/repo/target/debug/deps/properties-1857c1f54022bb78.d: crates/acoustics/tests/properties.rs

/root/repo/target/debug/deps/libproperties-1857c1f54022bb78.rmeta: crates/acoustics/tests/properties.rs

crates/acoustics/tests/properties.rs:
