/root/repo/target/debug/deps/thrubarrier_nn-3b5fef753c7bdeaa.d: crates/nn/src/lib.rs crates/nn/src/act.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_nn-3b5fef753c7bdeaa.rmeta: crates/nn/src/lib.rs crates/nn/src/act.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/act.rs:
crates/nn/src/dense.rs:
crates/nn/src/gru.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/matrix.rs:
crates/nn/src/model.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
