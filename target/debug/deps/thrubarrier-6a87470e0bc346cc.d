/root/repo/target/debug/deps/thrubarrier-6a87470e0bc346cc.d: src/lib.rs

/root/repo/target/debug/deps/libthrubarrier-6a87470e0bc346cc.rmeta: src/lib.rs

src/lib.rs:
