/root/repo/target/debug/deps/properties-0b0f804313bbb0af.d: crates/phoneme/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0b0f804313bbb0af.rmeta: crates/phoneme/tests/properties.rs Cargo.toml

crates/phoneme/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
