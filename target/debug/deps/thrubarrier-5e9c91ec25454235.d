/root/repo/target/debug/deps/thrubarrier-5e9c91ec25454235.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier-5e9c91ec25454235.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
