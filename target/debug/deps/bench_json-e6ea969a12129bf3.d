/root/repo/target/debug/deps/bench_json-e6ea969a12129bf3.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/debug/deps/libbench_json-e6ea969a12129bf3.rmeta: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
