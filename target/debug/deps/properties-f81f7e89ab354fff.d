/root/repo/target/debug/deps/properties-f81f7e89ab354fff.d: crates/defense/tests/properties.rs

/root/repo/target/debug/deps/libproperties-f81f7e89ab354fff.rmeta: crates/defense/tests/properties.rs

crates/defense/tests/properties.rs:
