/root/repo/target/debug/deps/properties-e3da06d393a030c6.d: crates/dsp/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e3da06d393a030c6.rmeta: crates/dsp/tests/properties.rs Cargo.toml

crates/dsp/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
