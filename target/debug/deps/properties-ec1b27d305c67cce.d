/root/repo/target/debug/deps/properties-ec1b27d305c67cce.d: crates/attack/tests/properties.rs

/root/repo/target/debug/deps/properties-ec1b27d305c67cce: crates/attack/tests/properties.rs

crates/attack/tests/properties.rs:
