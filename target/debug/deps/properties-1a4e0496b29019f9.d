/root/repo/target/debug/deps/properties-1a4e0496b29019f9.d: crates/defense/tests/properties.rs

/root/repo/target/debug/deps/properties-1a4e0496b29019f9: crates/defense/tests/properties.rs

crates/defense/tests/properties.rs:
