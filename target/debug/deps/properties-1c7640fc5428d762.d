/root/repo/target/debug/deps/properties-1c7640fc5428d762.d: crates/dsp/tests/properties.rs

/root/repo/target/debug/deps/libproperties-1c7640fc5428d762.rmeta: crates/dsp/tests/properties.rs

crates/dsp/tests/properties.rs:
