/root/repo/target/debug/deps/properties-d61fbf6df55aa220.d: crates/attack/tests/properties.rs

/root/repo/target/debug/deps/libproperties-d61fbf6df55aa220.rmeta: crates/attack/tests/properties.rs

crates/attack/tests/properties.rs:
