/root/repo/target/debug/deps/properties-0b87b6bd1ca86bbd.d: crates/attack/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0b87b6bd1ca86bbd.rmeta: crates/attack/tests/properties.rs Cargo.toml

crates/attack/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
