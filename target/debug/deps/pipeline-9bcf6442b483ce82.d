/root/repo/target/debug/deps/pipeline-9bcf6442b483ce82.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/libpipeline-9bcf6442b483ce82.rmeta: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
