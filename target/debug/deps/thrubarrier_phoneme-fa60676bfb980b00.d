/root/repo/target/debug/deps/thrubarrier_phoneme-fa60676bfb980b00.d: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

/root/repo/target/debug/deps/libthrubarrier_phoneme-fa60676bfb980b00.rmeta: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

crates/phoneme/src/lib.rs:
crates/phoneme/src/command.rs:
crates/phoneme/src/common.rs:
crates/phoneme/src/corpus.rs:
crates/phoneme/src/inventory.rs:
crates/phoneme/src/speaker.rs:
crates/phoneme/src/synth.rs:
