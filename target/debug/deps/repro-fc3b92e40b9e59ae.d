/root/repo/target/debug/deps/repro-fc3b92e40b9e59ae.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-fc3b92e40b9e59ae.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
