/root/repo/target/debug/deps/repro-8c6cbc9909b0cf11.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-8c6cbc9909b0cf11: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
