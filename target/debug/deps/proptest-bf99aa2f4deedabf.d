/root/repo/target/debug/deps/proptest-bf99aa2f4deedabf.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-bf99aa2f4deedabf.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-bf99aa2f4deedabf.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
