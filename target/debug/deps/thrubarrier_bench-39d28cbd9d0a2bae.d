/root/repo/target/debug/deps/thrubarrier_bench-39d28cbd9d0a2bae.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthrubarrier_bench-39d28cbd9d0a2bae.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthrubarrier_bench-39d28cbd9d0a2bae.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
