/root/repo/target/debug/deps/properties-5c3bc27862077cd5.d: crates/eval/tests/properties.rs

/root/repo/target/debug/deps/properties-5c3bc27862077cd5: crates/eval/tests/properties.rs

crates/eval/tests/properties.rs:
