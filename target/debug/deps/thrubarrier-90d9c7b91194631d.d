/root/repo/target/debug/deps/thrubarrier-90d9c7b91194631d.d: src/lib.rs

/root/repo/target/debug/deps/libthrubarrier-90d9c7b91194631d.rlib: src/lib.rs

/root/repo/target/debug/deps/libthrubarrier-90d9c7b91194631d.rmeta: src/lib.rs

src/lib.rs:
