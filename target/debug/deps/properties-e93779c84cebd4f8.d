/root/repo/target/debug/deps/properties-e93779c84cebd4f8.d: crates/phoneme/tests/properties.rs

/root/repo/target/debug/deps/properties-e93779c84cebd4f8: crates/phoneme/tests/properties.rs

crates/phoneme/tests/properties.rs:
