/root/repo/target/debug/deps/end_to_end-548b6caac48b0496.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-548b6caac48b0496: tests/end_to_end.rs

tests/end_to_end.rs:
