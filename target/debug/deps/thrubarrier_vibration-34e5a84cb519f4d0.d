/root/repo/target/debug/deps/thrubarrier_vibration-34e5a84cb519f4d0.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/libthrubarrier_vibration-34e5a84cb519f4d0.rmeta: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
