/root/repo/target/debug/deps/thrubarrier_attack-ee95aca91350057d.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_attack-ee95aca91350057d.rmeta: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs Cargo.toml

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
