/root/repo/target/debug/deps/experiments-3b5b2650f90b9992.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/libexperiments-3b5b2650f90b9992.rmeta: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
