/root/repo/target/debug/deps/thrubarrier_vibration-ca7ede6021a5c121.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/libthrubarrier_vibration-ca7ede6021a5c121.rlib: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/libthrubarrier_vibration-ca7ede6021a5c121.rmeta: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
