/root/repo/target/debug/deps/proptest-52c81d1c2f0637ac.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-52c81d1c2f0637ac.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-52c81d1c2f0637ac.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
