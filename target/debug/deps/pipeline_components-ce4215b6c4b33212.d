/root/repo/target/debug/deps/pipeline_components-ce4215b6c4b33212.d: tests/pipeline_components.rs

/root/repo/target/debug/deps/libpipeline_components-ce4215b6c4b33212.rmeta: tests/pipeline_components.rs

tests/pipeline_components.rs:
