/root/repo/target/debug/deps/thrubarrier_vibration-6ac9ec0ba0035d5d.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/libthrubarrier_vibration-6ac9ec0ba0035d5d.rmeta: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
