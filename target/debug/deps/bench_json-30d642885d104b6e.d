/root/repo/target/debug/deps/bench_json-30d642885d104b6e.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/debug/deps/libbench_json-30d642885d104b6e.rmeta: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
