/root/repo/target/debug/deps/properties-010e7eb179f1b874.d: crates/eval/tests/properties.rs

/root/repo/target/debug/deps/properties-010e7eb179f1b874: crates/eval/tests/properties.rs

crates/eval/tests/properties.rs:
