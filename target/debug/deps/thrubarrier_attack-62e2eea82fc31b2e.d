/root/repo/target/debug/deps/thrubarrier_attack-62e2eea82fc31b2e.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/thrubarrier_attack-62e2eea82fc31b2e: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
