/root/repo/target/debug/deps/thrubarrier_bench-9930e26299b9609f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/thrubarrier_bench-9930e26299b9609f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
