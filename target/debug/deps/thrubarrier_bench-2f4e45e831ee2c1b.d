/root/repo/target/debug/deps/thrubarrier_bench-2f4e45e831ee2c1b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthrubarrier_bench-2f4e45e831ee2c1b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
