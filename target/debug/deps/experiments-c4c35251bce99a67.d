/root/repo/target/debug/deps/experiments-c4c35251bce99a67.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-c4c35251bce99a67.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
