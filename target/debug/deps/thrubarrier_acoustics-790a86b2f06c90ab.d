/root/repo/target/debug/deps/thrubarrier_acoustics-790a86b2f06c90ab.d: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

/root/repo/target/debug/deps/libthrubarrier_acoustics-790a86b2f06c90ab.rlib: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

/root/repo/target/debug/deps/libthrubarrier_acoustics-790a86b2f06c90ab.rmeta: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

crates/acoustics/src/lib.rs:
crates/acoustics/src/barrier.rs:
crates/acoustics/src/loudspeaker.rs:
crates/acoustics/src/mic.rs:
crates/acoustics/src/propagation.rs:
crates/acoustics/src/room.rs:
crates/acoustics/src/scene.rs:
crates/acoustics/src/va.rs:
