/root/repo/target/debug/deps/properties-55b883959604c759.d: crates/nn/tests/properties.rs

/root/repo/target/debug/deps/properties-55b883959604c759: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
