/root/repo/target/debug/deps/properties-1c71224cb89025c5.d: crates/vibration/tests/properties.rs

/root/repo/target/debug/deps/libproperties-1c71224cb89025c5.rmeta: crates/vibration/tests/properties.rs

crates/vibration/tests/properties.rs:
