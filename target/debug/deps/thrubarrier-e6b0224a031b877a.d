/root/repo/target/debug/deps/thrubarrier-e6b0224a031b877a.d: src/lib.rs

/root/repo/target/debug/deps/thrubarrier-e6b0224a031b877a: src/lib.rs

src/lib.rs:
