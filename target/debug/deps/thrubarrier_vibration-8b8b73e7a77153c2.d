/root/repo/target/debug/deps/thrubarrier_vibration-8b8b73e7a77153c2.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_vibration-8b8b73e7a77153c2.rmeta: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs Cargo.toml

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
