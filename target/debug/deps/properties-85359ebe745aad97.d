/root/repo/target/debug/deps/properties-85359ebe745aad97.d: crates/acoustics/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-85359ebe745aad97.rmeta: crates/acoustics/tests/properties.rs Cargo.toml

crates/acoustics/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
