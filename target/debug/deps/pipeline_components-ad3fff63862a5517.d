/root/repo/target/debug/deps/pipeline_components-ad3fff63862a5517.d: tests/pipeline_components.rs

/root/repo/target/debug/deps/pipeline_components-ad3fff63862a5517: tests/pipeline_components.rs

tests/pipeline_components.rs:
