/root/repo/target/debug/deps/thrubarrier_attack-51f45e0f26b4e989.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/thrubarrier_attack-51f45e0f26b4e989: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
