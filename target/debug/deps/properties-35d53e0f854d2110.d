/root/repo/target/debug/deps/properties-35d53e0f854d2110.d: crates/dsp/tests/properties.rs

/root/repo/target/debug/deps/properties-35d53e0f854d2110: crates/dsp/tests/properties.rs

crates/dsp/tests/properties.rs:
