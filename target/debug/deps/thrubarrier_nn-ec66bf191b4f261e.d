/root/repo/target/debug/deps/thrubarrier_nn-ec66bf191b4f261e.d: crates/nn/src/lib.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs

/root/repo/target/debug/deps/libthrubarrier_nn-ec66bf191b4f261e.rmeta: crates/nn/src/lib.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs

crates/nn/src/lib.rs:
crates/nn/src/dense.rs:
crates/nn/src/gru.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/matrix.rs:
crates/nn/src/model.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
