/root/repo/target/debug/deps/end_to_end-ca2aec7eaae3ee39.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-ca2aec7eaae3ee39.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
