/root/repo/target/debug/deps/bench_json-22a1fefaba152ede.d: crates/bench/src/bin/bench_json.rs Cargo.toml

/root/repo/target/debug/deps/libbench_json-22a1fefaba152ede.rmeta: crates/bench/src/bin/bench_json.rs Cargo.toml

crates/bench/src/bin/bench_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
