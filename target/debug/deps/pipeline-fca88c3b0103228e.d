/root/repo/target/debug/deps/pipeline-fca88c3b0103228e.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/pipeline-fca88c3b0103228e: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
