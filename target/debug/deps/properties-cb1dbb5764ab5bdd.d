/root/repo/target/debug/deps/properties-cb1dbb5764ab5bdd.d: crates/acoustics/tests/properties.rs

/root/repo/target/debug/deps/properties-cb1dbb5764ab5bdd: crates/acoustics/tests/properties.rs

crates/acoustics/tests/properties.rs:
