/root/repo/target/debug/deps/thrubarrier-afeadfb55f052775.d: src/lib.rs

/root/repo/target/debug/deps/libthrubarrier-afeadfb55f052775.rmeta: src/lib.rs

src/lib.rs:
