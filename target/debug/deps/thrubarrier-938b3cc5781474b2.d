/root/repo/target/debug/deps/thrubarrier-938b3cc5781474b2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier-938b3cc5781474b2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
