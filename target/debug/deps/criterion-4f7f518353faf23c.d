/root/repo/target/debug/deps/criterion-4f7f518353faf23c.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4f7f518353faf23c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
