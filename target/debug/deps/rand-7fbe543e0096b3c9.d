/root/repo/target/debug/deps/rand-7fbe543e0096b3c9.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7fbe543e0096b3c9.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
