/root/repo/target/debug/deps/properties-f696e86986dc2606.d: crates/eval/tests/properties.rs

/root/repo/target/debug/deps/libproperties-f696e86986dc2606.rmeta: crates/eval/tests/properties.rs

crates/eval/tests/properties.rs:
