/root/repo/target/debug/deps/thrubarrier_acoustics-3d1d0486c545f59d.d: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

/root/repo/target/debug/deps/thrubarrier_acoustics-3d1d0486c545f59d: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

crates/acoustics/src/lib.rs:
crates/acoustics/src/barrier.rs:
crates/acoustics/src/loudspeaker.rs:
crates/acoustics/src/mic.rs:
crates/acoustics/src/propagation.rs:
crates/acoustics/src/room.rs:
crates/acoustics/src/scene.rs:
crates/acoustics/src/va.rs:
