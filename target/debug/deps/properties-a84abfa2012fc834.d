/root/repo/target/debug/deps/properties-a84abfa2012fc834.d: crates/eval/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a84abfa2012fc834.rmeta: crates/eval/tests/properties.rs Cargo.toml

crates/eval/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
