/root/repo/target/debug/deps/properties-e7c2dd9d1005d98d.d: crates/nn/tests/properties.rs

/root/repo/target/debug/deps/libproperties-e7c2dd9d1005d98d.rmeta: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
