/root/repo/target/debug/deps/thrubarrier_attack-cd593af72b1d346c.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/libthrubarrier_attack-cd593af72b1d346c.rlib: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/libthrubarrier_attack-cd593af72b1d346c.rmeta: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
