/root/repo/target/debug/deps/properties-25b96a12a23d9510.d: crates/defense/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-25b96a12a23d9510.rmeta: crates/defense/tests/properties.rs Cargo.toml

crates/defense/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
