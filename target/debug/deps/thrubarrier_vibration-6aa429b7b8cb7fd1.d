/root/repo/target/debug/deps/thrubarrier_vibration-6aa429b7b8cb7fd1.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/thrubarrier_vibration-6aa429b7b8cb7fd1: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
