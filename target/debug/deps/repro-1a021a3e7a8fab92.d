/root/repo/target/debug/deps/repro-1a021a3e7a8fab92.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-1a021a3e7a8fab92.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
