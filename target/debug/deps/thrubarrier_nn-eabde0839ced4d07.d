/root/repo/target/debug/deps/thrubarrier_nn-eabde0839ced4d07.d: crates/nn/src/lib.rs crates/nn/src/act.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs

/root/repo/target/debug/deps/thrubarrier_nn-eabde0839ced4d07: crates/nn/src/lib.rs crates/nn/src/act.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs

crates/nn/src/lib.rs:
crates/nn/src/act.rs:
crates/nn/src/dense.rs:
crates/nn/src/gru.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/matrix.rs:
crates/nn/src/model.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
