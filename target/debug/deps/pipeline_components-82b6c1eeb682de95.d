/root/repo/target/debug/deps/pipeline_components-82b6c1eeb682de95.d: tests/pipeline_components.rs

/root/repo/target/debug/deps/pipeline_components-82b6c1eeb682de95: tests/pipeline_components.rs

tests/pipeline_components.rs:
