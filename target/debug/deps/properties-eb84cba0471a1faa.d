/root/repo/target/debug/deps/properties-eb84cba0471a1faa.d: crates/phoneme/tests/properties.rs

/root/repo/target/debug/deps/libproperties-eb84cba0471a1faa.rmeta: crates/phoneme/tests/properties.rs

crates/phoneme/tests/properties.rs:
