/root/repo/target/debug/deps/thrubarrier_bench-3386349f728ddb0c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_bench-3386349f728ddb0c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
