/root/repo/target/debug/deps/repro-fa09d245680c6fb9.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-fa09d245680c6fb9: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
