/root/repo/target/debug/deps/properties-a267653b1a854550.d: crates/attack/tests/properties.rs

/root/repo/target/debug/deps/properties-a267653b1a854550: crates/attack/tests/properties.rs

crates/attack/tests/properties.rs:
