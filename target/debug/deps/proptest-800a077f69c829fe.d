/root/repo/target/debug/deps/proptest-800a077f69c829fe.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-800a077f69c829fe: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
