/root/repo/target/debug/deps/thrubarrier_acoustics-16a762cb0f296bd4.d: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_acoustics-16a762cb0f296bd4.rmeta: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs Cargo.toml

crates/acoustics/src/lib.rs:
crates/acoustics/src/barrier.rs:
crates/acoustics/src/loudspeaker.rs:
crates/acoustics/src/mic.rs:
crates/acoustics/src/propagation.rs:
crates/acoustics/src/room.rs:
crates/acoustics/src/scene.rs:
crates/acoustics/src/va.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
