/root/repo/target/debug/deps/properties-9041a9b928a9a5bb.d: crates/vibration/tests/properties.rs

/root/repo/target/debug/deps/properties-9041a9b928a9a5bb: crates/vibration/tests/properties.rs

crates/vibration/tests/properties.rs:
