/root/repo/target/debug/deps/properties-b72597b4075c3054.d: crates/nn/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b72597b4075c3054.rmeta: crates/nn/tests/properties.rs Cargo.toml

crates/nn/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
