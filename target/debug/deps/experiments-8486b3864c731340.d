/root/repo/target/debug/deps/experiments-8486b3864c731340.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/experiments-8486b3864c731340: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
