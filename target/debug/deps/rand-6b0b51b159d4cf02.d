/root/repo/target/debug/deps/rand-6b0b51b159d4cf02.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6b0b51b159d4cf02.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
