/root/repo/target/debug/deps/properties-b581c5d45e2cd207.d: crates/defense/tests/properties.rs

/root/repo/target/debug/deps/properties-b581c5d45e2cd207: crates/defense/tests/properties.rs

crates/defense/tests/properties.rs:
