/root/repo/target/debug/deps/proptest-62babdf0f848a754.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-62babdf0f848a754.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
