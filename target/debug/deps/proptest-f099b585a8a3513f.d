/root/repo/target/debug/deps/proptest-f099b585a8a3513f.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-f099b585a8a3513f: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
