/root/repo/target/debug/deps/bench_json-6a9d6c10ada61a37.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/debug/deps/bench_json-6a9d6c10ada61a37: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
