/root/repo/target/debug/deps/thrubarrier-d9931d6223bd4db6.d: src/lib.rs

/root/repo/target/debug/deps/libthrubarrier-d9931d6223bd4db6.rlib: src/lib.rs

/root/repo/target/debug/deps/libthrubarrier-d9931d6223bd4db6.rmeta: src/lib.rs

src/lib.rs:
