/root/repo/target/debug/deps/thrubarrier_acoustics-181f680f3fc0efaa.d: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

/root/repo/target/debug/deps/thrubarrier_acoustics-181f680f3fc0efaa: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

crates/acoustics/src/lib.rs:
crates/acoustics/src/barrier.rs:
crates/acoustics/src/loudspeaker.rs:
crates/acoustics/src/mic.rs:
crates/acoustics/src/propagation.rs:
crates/acoustics/src/room.rs:
crates/acoustics/src/scene.rs:
crates/acoustics/src/va.rs:
