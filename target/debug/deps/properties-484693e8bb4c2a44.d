/root/repo/target/debug/deps/properties-484693e8bb4c2a44.d: crates/vibration/tests/properties.rs

/root/repo/target/debug/deps/properties-484693e8bb4c2a44: crates/vibration/tests/properties.rs

crates/vibration/tests/properties.rs:
