/root/repo/target/debug/deps/thrubarrier_acoustics-5855d948f57b60c3.d: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

/root/repo/target/debug/deps/libthrubarrier_acoustics-5855d948f57b60c3.rmeta: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

crates/acoustics/src/lib.rs:
crates/acoustics/src/barrier.rs:
crates/acoustics/src/loudspeaker.rs:
crates/acoustics/src/mic.rs:
crates/acoustics/src/propagation.rs:
crates/acoustics/src/room.rs:
crates/acoustics/src/scene.rs:
crates/acoustics/src/va.rs:
