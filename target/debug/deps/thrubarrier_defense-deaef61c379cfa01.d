/root/repo/target/debug/deps/thrubarrier_defense-deaef61c379cfa01.d: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/guard.rs crates/defense/src/features.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs

/root/repo/target/debug/deps/libthrubarrier_defense-deaef61c379cfa01.rmeta: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/guard.rs crates/defense/src/features.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs

crates/defense/src/lib.rs:
crates/defense/src/detector.rs:
crates/defense/src/guard.rs:
crates/defense/src/features.rs:
crates/defense/src/segmentation.rs:
crates/defense/src/selection.rs:
crates/defense/src/sync.rs:
crates/defense/src/system.rs:
