/root/repo/target/debug/deps/properties-cb37bbf3efc57ea1.d: crates/nn/tests/properties.rs

/root/repo/target/debug/deps/properties-cb37bbf3efc57ea1: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
