/root/repo/target/debug/deps/properties-246cf726b0b2ccbf.d: crates/dsp/tests/properties.rs

/root/repo/target/debug/deps/properties-246cf726b0b2ccbf: crates/dsp/tests/properties.rs

crates/dsp/tests/properties.rs:
