/root/repo/target/debug/deps/repro-c255da3c9b98eeb3.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-c255da3c9b98eeb3: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
