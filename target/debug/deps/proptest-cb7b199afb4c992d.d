/root/repo/target/debug/deps/proptest-cb7b199afb4c992d.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cb7b199afb4c992d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
