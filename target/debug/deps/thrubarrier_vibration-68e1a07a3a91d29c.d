/root/repo/target/debug/deps/thrubarrier_vibration-68e1a07a3a91d29c.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/debug/deps/thrubarrier_vibration-68e1a07a3a91d29c: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
