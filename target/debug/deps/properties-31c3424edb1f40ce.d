/root/repo/target/debug/deps/properties-31c3424edb1f40ce.d: crates/acoustics/tests/properties.rs

/root/repo/target/debug/deps/properties-31c3424edb1f40ce: crates/acoustics/tests/properties.rs

crates/acoustics/tests/properties.rs:
