/root/repo/target/debug/deps/thrubarrier_attack-4e87c57488aa0e3e.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/debug/deps/libthrubarrier_attack-4e87c57488aa0e3e.rmeta: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
