/root/repo/target/debug/deps/thrubarrier_defense-b78f94f87d0782ae.d: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/guard.rs crates/defense/src/features.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs

/root/repo/target/debug/deps/thrubarrier_defense-b78f94f87d0782ae: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/guard.rs crates/defense/src/features.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs

crates/defense/src/lib.rs:
crates/defense/src/detector.rs:
crates/defense/src/guard.rs:
crates/defense/src/features.rs:
crates/defense/src/segmentation.rs:
crates/defense/src/selection.rs:
crates/defense/src/sync.rs:
crates/defense/src/system.rs:
