/root/repo/target/debug/deps/thrubarrier_phoneme-32640a2a35f8f1ca.d: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_phoneme-32640a2a35f8f1ca.rmeta: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs Cargo.toml

crates/phoneme/src/lib.rs:
crates/phoneme/src/command.rs:
crates/phoneme/src/common.rs:
crates/phoneme/src/corpus.rs:
crates/phoneme/src/inventory.rs:
crates/phoneme/src/speaker.rs:
crates/phoneme/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
