/root/repo/target/debug/deps/bench_json-cb461295ba7cf24d.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/debug/deps/bench_json-cb461295ba7cf24d: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
