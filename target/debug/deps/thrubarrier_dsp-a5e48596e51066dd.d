/root/repo/target/debug/deps/thrubarrier_dsp-a5e48596e51066dd.d: crates/dsp/src/lib.rs crates/dsp/src/buffer.rs crates/dsp/src/complex.rs crates/dsp/src/correlate.rs crates/dsp/src/error.rs crates/dsp/src/features.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gen.rs crates/dsp/src/mel.rs crates/dsp/src/resample.rs crates/dsp/src/response.rs crates/dsp/src/stats.rs crates/dsp/src/stft.rs crates/dsp/src/wav.rs crates/dsp/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libthrubarrier_dsp-a5e48596e51066dd.rmeta: crates/dsp/src/lib.rs crates/dsp/src/buffer.rs crates/dsp/src/complex.rs crates/dsp/src/correlate.rs crates/dsp/src/error.rs crates/dsp/src/features.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gen.rs crates/dsp/src/mel.rs crates/dsp/src/resample.rs crates/dsp/src/response.rs crates/dsp/src/stats.rs crates/dsp/src/stft.rs crates/dsp/src/wav.rs crates/dsp/src/window.rs Cargo.toml

crates/dsp/src/lib.rs:
crates/dsp/src/buffer.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/correlate.rs:
crates/dsp/src/error.rs:
crates/dsp/src/features.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/gen.rs:
crates/dsp/src/mel.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/response.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/stft.rs:
crates/dsp/src/wav.rs:
crates/dsp/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
