/root/repo/target/release/deps/thrubarrier_bench-ac042da39361fa19.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libthrubarrier_bench-ac042da39361fa19.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libthrubarrier_bench-ac042da39361fa19.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
