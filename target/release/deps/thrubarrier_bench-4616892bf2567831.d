/root/repo/target/release/deps/thrubarrier_bench-4616892bf2567831.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/thrubarrier_bench-4616892bf2567831: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
