/root/repo/target/release/deps/properties-26d157a7e6d33555.d: crates/eval/tests/properties.rs

/root/repo/target/release/deps/properties-26d157a7e6d33555: crates/eval/tests/properties.rs

crates/eval/tests/properties.rs:
