/root/repo/target/release/deps/proptest-a4bbd51af533c079.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-a4bbd51af533c079: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
