/root/repo/target/release/deps/thrubarrier_defense-ed95a73cf21aaa40.d: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/features.rs crates/defense/src/guard.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs

/root/repo/target/release/deps/thrubarrier_defense-ed95a73cf21aaa40: crates/defense/src/lib.rs crates/defense/src/detector.rs crates/defense/src/features.rs crates/defense/src/guard.rs crates/defense/src/segmentation.rs crates/defense/src/selection.rs crates/defense/src/sync.rs crates/defense/src/system.rs

crates/defense/src/lib.rs:
crates/defense/src/detector.rs:
crates/defense/src/features.rs:
crates/defense/src/guard.rs:
crates/defense/src/segmentation.rs:
crates/defense/src/selection.rs:
crates/defense/src/sync.rs:
crates/defense/src/system.rs:
