/root/repo/target/release/deps/properties-d904888737f6e693.d: crates/attack/tests/properties.rs

/root/repo/target/release/deps/properties-d904888737f6e693: crates/attack/tests/properties.rs

crates/attack/tests/properties.rs:
