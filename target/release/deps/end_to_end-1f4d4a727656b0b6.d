/root/repo/target/release/deps/end_to_end-1f4d4a727656b0b6.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-1f4d4a727656b0b6: tests/end_to_end.rs

tests/end_to_end.rs:
