/root/repo/target/release/deps/pipeline_components-6c47afee44f68e3a.d: tests/pipeline_components.rs

/root/repo/target/release/deps/pipeline_components-6c47afee44f68e3a: tests/pipeline_components.rs

tests/pipeline_components.rs:
