/root/repo/target/release/deps/properties-60e61083adf5d3a7.d: crates/vibration/tests/properties.rs

/root/repo/target/release/deps/properties-60e61083adf5d3a7: crates/vibration/tests/properties.rs

crates/vibration/tests/properties.rs:
