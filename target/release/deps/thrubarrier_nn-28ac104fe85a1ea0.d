/root/repo/target/release/deps/thrubarrier_nn-28ac104fe85a1ea0.d: crates/nn/src/lib.rs crates/nn/src/act.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs

/root/repo/target/release/deps/libthrubarrier_nn-28ac104fe85a1ea0.rlib: crates/nn/src/lib.rs crates/nn/src/act.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs

/root/repo/target/release/deps/libthrubarrier_nn-28ac104fe85a1ea0.rmeta: crates/nn/src/lib.rs crates/nn/src/act.rs crates/nn/src/dense.rs crates/nn/src/gru.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/matrix.rs crates/nn/src/model.rs crates/nn/src/param.rs crates/nn/src/serialize.rs

crates/nn/src/lib.rs:
crates/nn/src/act.rs:
crates/nn/src/dense.rs:
crates/nn/src/gru.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/matrix.rs:
crates/nn/src/model.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
