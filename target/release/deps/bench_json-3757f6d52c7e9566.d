/root/repo/target/release/deps/bench_json-3757f6d52c7e9566.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/release/deps/bench_json-3757f6d52c7e9566: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
