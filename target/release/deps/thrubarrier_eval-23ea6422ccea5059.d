/root/repo/target/release/deps/thrubarrier_eval-23ea6422ccea5059.d: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/ablation.rs crates/eval/src/experiments/architectures.rs crates/eval/src/experiments/common.rs crates/eval/src/experiments/extensions.rs crates/eval/src/experiments/fig11.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig4.rs crates/eval/src/experiments/fig6.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig9.rs crates/eval/src/experiments/naive_baseline.rs crates/eval/src/experiments/phoneme_detection.rs crates/eval/src/experiments/table1.rs crates/eval/src/experiments/table2.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/scenario.rs

/root/repo/target/release/deps/thrubarrier_eval-23ea6422ccea5059: crates/eval/src/lib.rs crates/eval/src/experiments/mod.rs crates/eval/src/experiments/ablation.rs crates/eval/src/experiments/architectures.rs crates/eval/src/experiments/common.rs crates/eval/src/experiments/extensions.rs crates/eval/src/experiments/fig11.rs crates/eval/src/experiments/fig3.rs crates/eval/src/experiments/fig4.rs crates/eval/src/experiments/fig6.rs crates/eval/src/experiments/fig7.rs crates/eval/src/experiments/fig9.rs crates/eval/src/experiments/naive_baseline.rs crates/eval/src/experiments/phoneme_detection.rs crates/eval/src/experiments/table1.rs crates/eval/src/experiments/table2.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/scenario.rs

crates/eval/src/lib.rs:
crates/eval/src/experiments/mod.rs:
crates/eval/src/experiments/ablation.rs:
crates/eval/src/experiments/architectures.rs:
crates/eval/src/experiments/common.rs:
crates/eval/src/experiments/extensions.rs:
crates/eval/src/experiments/fig11.rs:
crates/eval/src/experiments/fig3.rs:
crates/eval/src/experiments/fig4.rs:
crates/eval/src/experiments/fig6.rs:
crates/eval/src/experiments/fig7.rs:
crates/eval/src/experiments/fig9.rs:
crates/eval/src/experiments/naive_baseline.rs:
crates/eval/src/experiments/phoneme_detection.rs:
crates/eval/src/experiments/table1.rs:
crates/eval/src/experiments/table2.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/scenario.rs:
