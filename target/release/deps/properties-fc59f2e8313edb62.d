/root/repo/target/release/deps/properties-fc59f2e8313edb62.d: crates/acoustics/tests/properties.rs

/root/repo/target/release/deps/properties-fc59f2e8313edb62: crates/acoustics/tests/properties.rs

crates/acoustics/tests/properties.rs:
