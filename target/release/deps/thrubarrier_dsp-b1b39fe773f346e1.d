/root/repo/target/release/deps/thrubarrier_dsp-b1b39fe773f346e1.d: crates/dsp/src/lib.rs crates/dsp/src/buffer.rs crates/dsp/src/complex.rs crates/dsp/src/correlate.rs crates/dsp/src/error.rs crates/dsp/src/features.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gen.rs crates/dsp/src/mel.rs crates/dsp/src/resample.rs crates/dsp/src/response.rs crates/dsp/src/stats.rs crates/dsp/src/stft.rs crates/dsp/src/wav.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/thrubarrier_dsp-b1b39fe773f346e1: crates/dsp/src/lib.rs crates/dsp/src/buffer.rs crates/dsp/src/complex.rs crates/dsp/src/correlate.rs crates/dsp/src/error.rs crates/dsp/src/features.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gen.rs crates/dsp/src/mel.rs crates/dsp/src/resample.rs crates/dsp/src/response.rs crates/dsp/src/stats.rs crates/dsp/src/stft.rs crates/dsp/src/wav.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/buffer.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/correlate.rs:
crates/dsp/src/error.rs:
crates/dsp/src/features.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/gen.rs:
crates/dsp/src/mel.rs:
crates/dsp/src/resample.rs:
crates/dsp/src/response.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/stft.rs:
crates/dsp/src/wav.rs:
crates/dsp/src/window.rs:
