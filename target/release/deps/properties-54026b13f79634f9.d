/root/repo/target/release/deps/properties-54026b13f79634f9.d: crates/defense/tests/properties.rs

/root/repo/target/release/deps/properties-54026b13f79634f9: crates/defense/tests/properties.rs

crates/defense/tests/properties.rs:
