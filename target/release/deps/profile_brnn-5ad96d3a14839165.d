/root/repo/target/release/deps/profile_brnn-5ad96d3a14839165.d: crates/bench/src/bin/profile_brnn.rs

/root/repo/target/release/deps/profile_brnn-5ad96d3a14839165: crates/bench/src/bin/profile_brnn.rs

crates/bench/src/bin/profile_brnn.rs:
