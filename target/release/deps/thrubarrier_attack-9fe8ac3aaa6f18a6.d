/root/repo/target/release/deps/thrubarrier_attack-9fe8ac3aaa6f18a6.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/release/deps/libthrubarrier_attack-9fe8ac3aaa6f18a6.rlib: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/release/deps/libthrubarrier_attack-9fe8ac3aaa6f18a6.rmeta: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
