/root/repo/target/release/deps/properties-fb1608049cd5af81.d: crates/dsp/tests/properties.rs

/root/repo/target/release/deps/properties-fb1608049cd5af81: crates/dsp/tests/properties.rs

crates/dsp/tests/properties.rs:
