/root/repo/target/release/deps/properties-43846872ebb8f086.d: crates/nn/tests/properties.rs

/root/repo/target/release/deps/properties-43846872ebb8f086: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
