/root/repo/target/release/deps/thrubarrier_vibration-6b6638600cc22e97.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/release/deps/libthrubarrier_vibration-6b6638600cc22e97.rlib: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/release/deps/libthrubarrier_vibration-6b6638600cc22e97.rmeta: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
