/root/repo/target/release/deps/repro-925d7b5a656382b0.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-925d7b5a656382b0: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
