/root/repo/target/release/deps/properties-b80209fed2ab7e48.d: crates/phoneme/tests/properties.rs

/root/repo/target/release/deps/properties-b80209fed2ab7e48: crates/phoneme/tests/properties.rs

crates/phoneme/tests/properties.rs:
