/root/repo/target/release/deps/thrubarrier-fb8f9cab0675eb7a.d: src/lib.rs

/root/repo/target/release/deps/thrubarrier-fb8f9cab0675eb7a: src/lib.rs

src/lib.rs:
