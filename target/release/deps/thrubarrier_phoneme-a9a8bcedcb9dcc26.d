/root/repo/target/release/deps/thrubarrier_phoneme-a9a8bcedcb9dcc26.d: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

/root/repo/target/release/deps/thrubarrier_phoneme-a9a8bcedcb9dcc26: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

crates/phoneme/src/lib.rs:
crates/phoneme/src/command.rs:
crates/phoneme/src/common.rs:
crates/phoneme/src/corpus.rs:
crates/phoneme/src/inventory.rs:
crates/phoneme/src/speaker.rs:
crates/phoneme/src/synth.rs:
