/root/repo/target/release/deps/thrubarrier_vibration-cefb98536fc02c86.d: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

/root/repo/target/release/deps/thrubarrier_vibration-cefb98536fc02c86: crates/vibration/src/lib.rs crates/vibration/src/accelerometer.rs crates/vibration/src/chirp.rs crates/vibration/src/motion.rs crates/vibration/src/wearable.rs

crates/vibration/src/lib.rs:
crates/vibration/src/accelerometer.rs:
crates/vibration/src/chirp.rs:
crates/vibration/src/motion.rs:
crates/vibration/src/wearable.rs:
