/root/repo/target/release/deps/thrubarrier_acoustics-ea353e4c3ab08607.d: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

/root/repo/target/release/deps/thrubarrier_acoustics-ea353e4c3ab08607: crates/acoustics/src/lib.rs crates/acoustics/src/barrier.rs crates/acoustics/src/loudspeaker.rs crates/acoustics/src/mic.rs crates/acoustics/src/propagation.rs crates/acoustics/src/room.rs crates/acoustics/src/scene.rs crates/acoustics/src/va.rs

crates/acoustics/src/lib.rs:
crates/acoustics/src/barrier.rs:
crates/acoustics/src/loudspeaker.rs:
crates/acoustics/src/mic.rs:
crates/acoustics/src/propagation.rs:
crates/acoustics/src/room.rs:
crates/acoustics/src/scene.rs:
crates/acoustics/src/va.rs:
