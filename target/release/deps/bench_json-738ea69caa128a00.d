/root/repo/target/release/deps/bench_json-738ea69caa128a00.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/release/deps/bench_json-738ea69caa128a00: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
