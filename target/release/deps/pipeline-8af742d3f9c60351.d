/root/repo/target/release/deps/pipeline-8af742d3f9c60351.d: crates/bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-8af742d3f9c60351: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
