/root/repo/target/release/deps/thrubarrier_phoneme-f059245f3e79b3c6.d: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

/root/repo/target/release/deps/libthrubarrier_phoneme-f059245f3e79b3c6.rlib: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

/root/repo/target/release/deps/libthrubarrier_phoneme-f059245f3e79b3c6.rmeta: crates/phoneme/src/lib.rs crates/phoneme/src/command.rs crates/phoneme/src/common.rs crates/phoneme/src/corpus.rs crates/phoneme/src/inventory.rs crates/phoneme/src/speaker.rs crates/phoneme/src/synth.rs

crates/phoneme/src/lib.rs:
crates/phoneme/src/command.rs:
crates/phoneme/src/common.rs:
crates/phoneme/src/corpus.rs:
crates/phoneme/src/inventory.rs:
crates/phoneme/src/speaker.rs:
crates/phoneme/src/synth.rs:
