/root/repo/target/release/deps/experiments-5857e85c2b6bb9a6.d: crates/bench/benches/experiments.rs

/root/repo/target/release/deps/experiments-5857e85c2b6bb9a6: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
