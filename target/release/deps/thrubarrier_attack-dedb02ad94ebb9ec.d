/root/repo/target/release/deps/thrubarrier_attack-dedb02ad94ebb9ec.d: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

/root/repo/target/release/deps/thrubarrier_attack-dedb02ad94ebb9ec: crates/attack/src/lib.rs crates/attack/src/generator.rs crates/attack/src/hidden.rs

crates/attack/src/lib.rs:
crates/attack/src/generator.rs:
crates/attack/src/hidden.rs:
