/root/repo/target/release/deps/repro-c4c6307b8c00a4b7.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-c4c6307b8c00a4b7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
