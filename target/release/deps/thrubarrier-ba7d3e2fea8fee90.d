/root/repo/target/release/deps/thrubarrier-ba7d3e2fea8fee90.d: src/lib.rs

/root/repo/target/release/deps/libthrubarrier-ba7d3e2fea8fee90.rlib: src/lib.rs

/root/repo/target/release/deps/libthrubarrier-ba7d3e2fea8fee90.rmeta: src/lib.rs

src/lib.rs:
