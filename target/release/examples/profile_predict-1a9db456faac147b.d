/root/repo/target/release/examples/profile_predict-1a9db456faac147b.d: crates/nn/examples/profile_predict.rs

/root/repo/target/release/examples/profile_predict-1a9db456faac147b: crates/nn/examples/profile_predict.rs

crates/nn/examples/profile_predict.rs:
