/root/repo/target/release/examples/detection_eval-79c80310c564e35b.d: examples/detection_eval.rs

/root/repo/target/release/examples/detection_eval-79c80310c564e35b: examples/detection_eval.rs

examples/detection_eval.rs:
