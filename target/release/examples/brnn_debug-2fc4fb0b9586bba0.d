/root/repo/target/release/examples/brnn_debug-2fc4fb0b9586bba0.d: crates/defense/examples/brnn_debug.rs

/root/repo/target/release/examples/brnn_debug-2fc4fb0b9586bba0: crates/defense/examples/brnn_debug.rs

crates/defense/examples/brnn_debug.rs:
