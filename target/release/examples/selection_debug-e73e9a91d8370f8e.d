/root/repo/target/release/examples/selection_debug-e73e9a91d8370f8e.d: crates/defense/examples/selection_debug.rs

/root/repo/target/release/examples/selection_debug-e73e9a91d8370f8e: crates/defense/examples/selection_debug.rs

crates/defense/examples/selection_debug.rs:
