/root/repo/target/release/examples/table1_debug-d30190e28e7833a5.d: crates/eval/examples/table1_debug.rs

/root/repo/target/release/examples/table1_debug-d30190e28e7833a5: crates/eval/examples/table1_debug.rs

crates/eval/examples/table1_debug.rs:
