/root/repo/target/release/examples/seed_scan-3b3c7ef04949690e.d: crates/eval/examples/seed_scan.rs

/root/repo/target/release/examples/seed_scan-3b3c7ef04949690e: crates/eval/examples/seed_scan.rs

crates/eval/examples/seed_scan.rs:
