/root/repo/target/release/examples/table1_run-e93e88033c5ec898.d: crates/eval/examples/table1_run.rs

/root/repo/target/release/examples/table1_run-e93e88033c5ec898: crates/eval/examples/table1_run.rs

crates/eval/examples/table1_run.rs:
