/root/repo/target/release/examples/guard_deployment-87df6af3788d8a1e.d: examples/guard_deployment.rs

/root/repo/target/release/examples/guard_deployment-87df6af3788d8a1e: examples/guard_deployment.rs

examples/guard_deployment.rs:
