/root/repo/target/release/examples/cross_domain_sensing-0745dd3d0228ada3.d: examples/cross_domain_sensing.rs

/root/repo/target/release/examples/cross_domain_sensing-0745dd3d0228ada3: examples/cross_domain_sensing.rs

examples/cross_domain_sensing.rs:
