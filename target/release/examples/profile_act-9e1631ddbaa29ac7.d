/root/repo/target/release/examples/profile_act-9e1631ddbaa29ac7.d: crates/nn/examples/profile_act.rs

/root/repo/target/release/examples/profile_act-9e1631ddbaa29ac7: crates/nn/examples/profile_act.rs

crates/nn/examples/profile_act.rs:
