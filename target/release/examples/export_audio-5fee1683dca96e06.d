/root/repo/target/release/examples/export_audio-5fee1683dca96e06.d: examples/export_audio.rs

/root/repo/target/release/examples/export_audio-5fee1683dca96e06: examples/export_audio.rs

examples/export_audio.rs:
