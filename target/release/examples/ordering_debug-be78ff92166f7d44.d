/root/repo/target/release/examples/ordering_debug-be78ff92166f7d44.d: crates/eval/examples/ordering_debug.rs

/root/repo/target/release/examples/ordering_debug-be78ff92166f7d44: crates/eval/examples/ordering_debug.rs

crates/eval/examples/ordering_debug.rs:
