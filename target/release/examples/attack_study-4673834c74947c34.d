/root/repo/target/release/examples/attack_study-4673834c74947c34.d: examples/attack_study.rs

/root/repo/target/release/examples/attack_study-4673834c74947c34: examples/attack_study.rs

examples/attack_study.rs:
