/root/repo/target/release/examples/quickstart-62618f81626d37fc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-62618f81626d37fc: examples/quickstart.rs

examples/quickstart.rs:
