/root/repo/target/release/examples/attack_tail_debug-5410a5c173575bbe.d: crates/eval/examples/attack_tail_debug.rs

/root/repo/target/release/examples/attack_tail_debug-5410a5c173575bbe: crates/eval/examples/attack_tail_debug.rs

crates/eval/examples/attack_tail_debug.rs:
