/root/repo/target/release/examples/phoneme_selection-b15a0a1c28826ae0.d: examples/phoneme_selection.rs

/root/repo/target/release/examples/phoneme_selection-b15a0a1c28826ae0: examples/phoneme_selection.rs

examples/phoneme_selection.rs:
