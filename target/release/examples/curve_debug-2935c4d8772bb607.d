/root/repo/target/release/examples/curve_debug-2935c4d8772bb607.d: crates/defense/examples/curve_debug.rs

/root/repo/target/release/examples/curve_debug-2935c4d8772bb607: crates/defense/examples/curve_debug.rs

crates/defense/examples/curve_debug.rs:
