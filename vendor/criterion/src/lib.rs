//! Vendored offline stand-in for the `criterion` crate.
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`] and the `criterion_group!` / `criterion_main!`
//! macros — measuring wall-clock medians with a per-bench time budget
//! instead of criterion's full statistical analysis. When invoked with
//! `--test` (as `cargo test --benches` does) each bench body runs once,
//! untimed, so benches double as smoke tests.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-bench wall-clock budget once warmed up.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Benchmark harness entry point (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a harness from the process CLI arguments. `--test` puts it
    /// in test mode (run each bench once, untimed); other flags that the
    /// real criterion accepts are ignored.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 60,
        }
    }

    /// Prints the closing line after all groups have run.
    pub fn final_summary(&self) {
        if !self.test_mode {
            println!("benchmarks complete");
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the workload.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
        } else {
            bencher.samples.sort_unstable();
            let median = bencher
                .samples
                .get(bencher.samples.len() / 2)
                .copied()
                .unwrap_or_default();
            println!(
                "{}/{}: median {:?} ({} samples)",
                self.name,
                id,
                median,
                bencher.samples.len()
            );
        }
        self
    }

    /// Ends the group (kept for API parity; all reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one wall-clock sample per call,
    /// until the sample cap or the time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // One warmup to populate caches and lazy state.
        std::hint::black_box(f());
        let cap = 600;
        let start = Instant::now();
        while self.samples.len() < cap && start.elapsed() < TIME_BUDGET {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_record_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        let mut calls = 0u32;
        group.bench_function("counted", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls >= 2, "warmup + at least one sample, got {calls}");
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("demo");
        let mut calls = 0u32;
        group.bench_function("single", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
    }
}
