//! Vendored offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! numeric-range and `prop::collection::vec` strategies, `ProptestConfig`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Inputs
//! are sampled from a per-test deterministic RNG (seeded from the test
//! name), so failures are reproducible run-to-run. Shrinking is not
//! implemented: a failing case reports the panic from its assertion
//! directly instead of a minimized counterexample.

#![warn(missing_docs)]

/// Strategies: recipes for generating random test inputs.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Samples one value using `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Size specification for collection strategies: either an exact
    /// length or a range of lengths.
    pub trait SizeRange {
        /// Samples a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element
    /// strategy; see [`crate::prop::collection::vec`].
    pub struct VecStrategy<S, L> {
        pub(crate) element: S,
        pub(crate) size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (mirror of `proptest::test_runner`).
pub mod test_runner {
    /// Controls how many random cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Choosing among explicit values (mirror of `proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed list of options; see
    /// [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Picks one of `options` uniformly at random for each case.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

/// Namespaced strategy constructors (mirror of `proptest::prop`).
pub mod prop {
    pub use crate::sample;

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// Strategy for `Vec`s whose elements come from `element` and
        /// whose length comes from `size` (a `usize` or `Range<usize>`).
        pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// Deterministic per-(test, case) seed so failures reproduce.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        h.finish()
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body against `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$attr])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::case_seed(concat!(module_path!(), "::", stringify!($name)), __case),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies may `return Ok(())` early, as under real proptest,
                // so each case runs inside a Result-returning closure.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), ::std::boxed::Box<dyn ::std::error::Error>> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest case {__case} returned error: {e}");
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_length_spec() {
        use crate::__rt::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(9);
        let fixed = prop::collection::vec(-1.0f32..1.0, 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
        let ranged = prop::collection::vec(0.0f32..1.0, 2usize..7);
        for _ in 0..50 {
            let v = ranged.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_samples_within_ranges(x in -2.0f32..2.0, n in 1usize..9) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn select_strategy_only_yields_listed_options(
            fs in prop::sample::select(vec![8_000u32, 16_000, 48_000]),
        ) {
            prop_assert!([8_000, 16_000, 48_000].contains(&fs));
        }

        #[test]
        fn nested_vec_strategy_works(
            rows in prop::collection::vec(prop::collection::vec(0.0f32..1.0, 3usize), 1usize..4),
        ) {
            prop_assert!(!rows.is_empty());
            for r in &rows {
                prop_assert_eq!(r.len(), 3);
            }
        }
    }
}
