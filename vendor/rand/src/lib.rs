//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `rand 0.8` API surface the workspace
//! actually uses — `Rng`, `RngCore`, `SeedableRng` and `rngs::StdRng` —
//! backed by a deterministic xoshiro256++ generator. Streams are NOT
//! bit-compatible with upstream `rand`; everything downstream of a seed
//! is deterministic and of good statistical quality, which is all the
//! simulation and its tests rely on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open and closed intervals.
/// The blanket [`SampleRange`] impls below hang off this trait so type
/// inference unifies the range's element type with `gen_range`'s return
/// type immediately (matching upstream `rand`'s behavior).
pub trait UniformSampler: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Panics if the interval is empty.
    fn sample_interval<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSampler for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as StandardSample>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampler for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampler> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: UniformSampler> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_interval(lo, hi, true, rng)
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f32..3.0);
            assert!((-3.0..3.0).contains(&x));
            let n = rng.gen_range(5usize..14);
            assert!((5..14).contains(&n));
            let m = rng.gen_range(0i32..=4);
            assert!((0..=4).contains(&m));
        }
    }

    #[test]
    fn mean_of_unit_samples_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
