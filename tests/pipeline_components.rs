//! Cross-crate integration tests for individual pipeline stages working
//! on each other's real outputs (rather than synthetic fixtures).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use thrubarrier::defense::segmentation::{
    extract_selected_samples, DetectorTrainConfig, PhonemeDetector, SegmentSelector,
};
use thrubarrier::defense::selection::{run_selection, SelectionConfig};
use thrubarrier::defense::sync;
use thrubarrier::phoneme::corpus::{speaker_panel, training_corpus};
use thrubarrier::phoneme::inventory::{Inventory, PhonemeId};
use thrubarrier::phoneme::synth::Synthesizer;
use thrubarrier::phoneme::SpeakerProfile;
use thrubarrier::vibration::Wearable;

#[test]
fn selection_feeds_detector_training_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2001);
    let panel = speaker_panel(2, 2, &mut rng);
    let selection = run_selection(
        &SelectionConfig {
            samples_per_phoneme: 6,
            ..Default::default()
        },
        &Wearable::fossil_gen_5(),
        &panel,
        &mut rng,
    );
    // The screening keeps a clear majority of the common phonemes and
    // always drops the weak fricatives.
    let selected = selection.selected_ids();
    assert!(selected.len() >= 25, "selected {}", selected.len());
    assert!(!selection.selected_symbols().contains(&"s"));

    let sensitive: HashSet<PhonemeId> = selected.into_iter().collect();
    let synth = Synthesizer::new(16_000);
    let corpus = training_corpus(&synth, 16, &panel, &mut rng);
    let detector = PhonemeDetector::train(
        &sensitive,
        &corpus,
        &DetectorTrainConfig {
            hidden_size: 12,
            epochs: 3,
            ..Default::default()
        },
        &mut rng,
    );
    let acc = detector.frame_accuracy(&corpus);
    assert!(acc > 0.75, "training accuracy {acc}");
}

#[test]
fn synchronization_then_extraction_keeps_segments_aligned() {
    // Synthesize an utterance, record it at two "devices" with a network
    // delay, synchronize, select frames on one and extract from both:
    // the extracted signals must be sample-aligned.
    let mut rng = StdRng::seed_from_u64(2002);
    let synth = Synthesizer::new(16_000);
    let speaker = SpeakerProfile::reference_male();
    let ids = ["t", "er", "n", "aa", "n"]
        .iter()
        .map(|s| Inventory::by_symbol(s).unwrap())
        .collect::<Vec<_>>();
    let utt = synth.synthesize_sequence(&ids, &speaker, &mut rng);
    let va = utt.audio.clone();
    let delayed = sync::apply_trigger_delay(&va, 0.08);
    let (aligned, est) = sync::synchronize(&va, &delayed, 0.2).unwrap();
    assert!((est - (0.08 * 16_000.0) as isize).abs() <= 2);

    let selector = thrubarrier::defense::segmentation::EnergySelector::default();
    let mask = selector.sensitive_frames(va.samples(), 16_000);
    let a = extract_selected_samples(va.samples(), &mask, 400, 160);
    let b = extract_selected_samples(aligned.samples(), &mask, 400, 160);
    let n = a.len().min(b.len());
    assert!(n > 1_000, "extracted too little: {n}");
    let corr = thrubarrier::dsp::stats::pearson(&a[..n], &b[..n]);
    assert!(corr > 0.95, "extracted segments misaligned: corr {corr}");
}

#[test]
fn wearable_conversion_composes_with_feature_extraction() {
    let mut rng = StdRng::seed_from_u64(2003);
    let synth = Synthesizer::new(16_000);
    let speaker = SpeakerProfile::reference_female();
    let utt = synth.synthesize_sequence(
        &[
            Inventory::by_symbol("ih").unwrap(),
            Inventory::by_symbol("k").unwrap(),
            Inventory::by_symbol("ae").unwrap(),
        ],
        &speaker,
        &mut rng,
    );
    let wearable = Wearable::fossil_gen_5();
    let vib = wearable.convert(utt.audio.samples(), 16_000, &mut rng);
    let features =
        thrubarrier::defense::features::VibrationFeatureExtractor::paper_default().extract(&vib);
    assert!(features.frames() > 0);
    assert!(features.bin_frequency(0) > 5.0);
    assert!((features.max_value() - 1.0).abs() < 1e-4);
}

#[test]
fn hidden_voice_still_triggers_wake_matcher_but_fails_defense() {
    use thrubarrier::acoustics::va::{VaDevice, VaModel};
    use thrubarrier::attack::{AttackGenerator, AttackKind};
    use thrubarrier::phoneme::command::CommandBank;

    let mut rng = StdRng::seed_from_u64(2004);
    let synth = Synthesizer::new(16_000);
    let bank = CommandBank::standard();
    let wake = bank.by_text("ok google").unwrap();
    let victim = SpeakerProfile::reference_male();
    let templates: Vec<Vec<f32>> = [
        SpeakerProfile::reference_male(),
        SpeakerProfile::reference_female(),
    ]
    .iter()
    .map(|sp| {
        synth
            .synthesize_command(wake, sp, &mut rng)
            .audio
            .into_samples()
    })
    .collect();
    let device = VaDevice::paper_device(VaModel::GoogleHome, &templates);

    let generator = AttackGenerator::new(16_000);
    let adversary = SpeakerProfile::reference_female();
    let hidden = generator.generate(AttackKind::HiddenVoice, wake, &victim, &adversary, &mut rng);
    // Presented cleanly (no barrier), the obfuscated command still
    // matches the wake template enough to trigger the device...
    let decision = device.evaluate(&hidden.samples, 16_000);
    assert!(
        decision.match_score > 0.5,
        "hidden command match {}",
        decision.match_score
    );
}
