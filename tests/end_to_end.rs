//! Cross-crate integration tests: the full pipeline from synthesized
//! speech through acoustics, recording, cross-domain sensing and
//! detection.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier::attack::AttackKind;
use thrubarrier::defense::{DefenseMethod, DefenseSystem};
use thrubarrier::scenario::{TrialContext, TrialSettings};

#[test]
fn full_system_separates_attacks_from_users() {
    let mut ctx = TrialContext::seeded(1001);
    let system = DefenseSystem::paper_default();
    let mut legit_scores = Vec::new();
    let mut attack_scores = Vec::new();
    for _ in 0..6 {
        let legit = ctx.legitimate_trial();
        legit_scores.push(system.score(
            &legit.va_recording,
            &legit.wearable_recording,
            &mut ctx.rng,
        ));
        let attack = ctx.replay_attack_trial();
        attack_scores.push(system.score(
            &attack.va_recording,
            &attack.wearable_recording,
            &mut ctx.rng,
        ));
    }
    let legit_mean: f32 = legit_scores.iter().sum::<f32>() / legit_scores.len() as f32;
    let attack_mean: f32 = attack_scores.iter().sum::<f32>() / attack_scores.len() as f32;
    assert!(
        legit_mean > attack_mean + 0.3,
        "legit {legit_mean} vs attack {attack_mean}"
    );
}

#[test]
fn every_attack_kind_scores_below_typical_user() {
    let mut ctx = TrialContext::seeded(1002);
    let system = DefenseSystem::paper_default();
    let mut legit_sum = 0.0f32;
    for _ in 0..4 {
        let legit = ctx.legitimate_trial();
        legit_sum += system.score(&legit.va_recording, &legit.wearable_recording, &mut ctx.rng);
    }
    let legit_mean = legit_sum / 4.0;
    for kind in AttackKind::all() {
        let mut attack_sum = 0.0f32;
        for _ in 0..3 {
            let t = ctx.attack_trial(kind);
            attack_sum += system.score(&t.va_recording, &t.wearable_recording, &mut ctx.rng);
        }
        let attack_mean = attack_sum / 3.0;
        assert!(
            attack_mean < legit_mean,
            "{kind}: attack {attack_mean} vs legit {legit_mean}"
        );
    }
}

#[test]
fn method_ordering_matches_paper() {
    // Audio baseline must separate worse than the vibration methods.
    let mut ctx = TrialContext::seeded(1003);
    let system = DefenseSystem::paper_default();
    let gap = |method: DefenseMethod, ctx: &mut TrialContext| -> f32 {
        let mut legit = 0.0;
        let mut attack = 0.0;
        for _ in 0..5 {
            let l = ctx.legitimate_trial();
            legit += system.score_with_method(
                method,
                &l.va_recording,
                &l.wearable_recording,
                &mut ctx.rng,
            );
            let a = ctx.replay_attack_trial();
            attack += system.score_with_method(
                method,
                &a.va_recording,
                &a.wearable_recording,
                &mut ctx.rng,
            );
        }
        (legit - attack) / 5.0
    };
    let audio_gap = gap(DefenseMethod::AudioBaseline, &mut ctx);
    let vib_gap = gap(DefenseMethod::VibrationBaseline, &mut ctx);
    let full_gap = gap(DefenseMethod::Full, &mut ctx);
    assert!(
        vib_gap > audio_gap,
        "vibration gap {vib_gap} vs audio gap {audio_gap}"
    );
    assert!(
        full_gap > audio_gap,
        "full gap {full_gap} vs audio gap {audio_gap}"
    );
}

#[test]
fn brick_wall_makes_attacks_inaudible() {
    // The paper's reason for focusing on glass/wood: brick absorbs
    // everything, so the attack barely reaches the VA at all.
    use thrubarrier::acoustics::barrier::{Barrier, BarrierMaterial};
    use thrubarrier::acoustics::room::{Room, RoomId};
    let mut ctx = TrialContext::seeded(1004);
    let mut brick_room = Room::paper_room(RoomId::A);
    brick_room.barrier = Barrier::new(BarrierMaterial::BrickWall);
    ctx.settings = TrialSettings {
        room: brick_room,
        ..Default::default()
    };
    let through_brick = ctx.attack_trial(AttackKind::Replay);
    let mut ctx_glass = TrialContext::seeded(1004);
    let through_glass = ctx_glass.attack_trial(AttackKind::Replay);
    assert!(
        through_brick.va_recording.rms() < through_glass.va_recording.rms() * 0.5,
        "brick {} vs glass {}",
        through_brick.va_recording.rms(),
        through_glass.va_recording.rms()
    );
}

#[test]
fn scores_are_deterministic_given_seeds() {
    let mut ctx_a = TrialContext::seeded(1005);
    let mut ctx_b = TrialContext::seeded(1005);
    let system = DefenseSystem::paper_default();
    let ta = ctx_a.legitimate_trial();
    let tb = ctx_b.legitimate_trial();
    let mut ra = StdRng::seed_from_u64(5);
    let mut rb = StdRng::seed_from_u64(5);
    let sa = system.score(&ta.va_recording, &ta.wearable_recording, &mut ra);
    let sb = system.score(&tb.va_recording, &tb.wearable_recording, &mut rb);
    assert_eq!(sa, sb);
}
