//! Demonstrates the cross-domain sensing primitive on raw signals: why
//! a wideband (user-like) sound survives the trip through the wearable's
//! speaker + accelerometer while a barrier-filtered sound degenerates
//! into noise.
//!
//! ```sh
//! cargo run --release --example cross_domain_sensing
//! ```

use rand::{rngs::StdRng, SeedableRng};
use thrubarrier::acoustics::barrier::{Barrier, BarrierMaterial};
use thrubarrier::dsp::{correlate, gen, Stft};
use thrubarrier::vibration::Wearable;

fn main() {
    let fs = 16_000u32;
    let wearable = Wearable::fossil_gen_5();
    let mut rng = StdRng::seed_from_u64(7);

    // A user-like wideband sweep and its barrier-filtered counterpart.
    let user_sound = gen::chirp(150.0, 3_000.0, 0.1, fs, 2.0);
    let barrier = Barrier::new(BarrierMaterial::GlassWindow);
    let attack_sound = barrier.transmit(&user_sound, fs);

    println!("barrier transmission loss:");
    for f in [100.0, 500.0, 1_000.0, 2_000.0, 4_000.0] {
        println!("  {f:>6.0} Hz: {:>5.1} dB", barrier.transmission_loss_db(f));
    }

    // Convert each sound twice (two independent replays) and correlate
    // the vibration features — the defense's core measurement.
    let stft = Stft::vibration_default();
    let mut score = |sound: &[f32]| -> f32 {
        let v1 = wearable.convert(sound, fs, &mut rng);
        let v2 = wearable.convert(sound, fs, &mut rng);
        let mut s1 = stft.power_spectrogram(v1.samples(), v1.sample_rate());
        let mut s2 = stft.power_spectrogram(v2.samples(), v2.sample_rate());
        for s in [&mut s1, &mut s2] {
            s.crop_low_frequencies(5.0);
            s.normalize_by_max();
        }
        correlate::spectrogram_correlation(&s1, &s2).unwrap_or(0.0)
    };

    let user_corr = score(&user_sound);
    let attack_corr = score(&attack_sound);
    println!("\nvibration-domain self-consistency (2-D correlation):");
    println!("  wideband user-like sound:   {user_corr:.3}");
    println!("  thru-barrier filtered sound: {attack_corr:.3}");
    println!(
        "\nThe barrier-filtered sound converts into mostly accelerometer noise\n\
         (low-frequency-driven noise injection), so two conversions of it do\n\
         not agree — that disagreement is what the detector thresholds."
    );
}
