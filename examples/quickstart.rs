//! Quickstart: build the defense, present one legitimate command and one
//! thru-barrier replay attack, and watch the scores separate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use thrubarrier::defense::{DefenseMethod, DefenseSystem};
use thrubarrier::scenario::TrialContext;

fn main() {
    // Everything in the workspace is seeded: same seed, same trial.
    let mut ctx = TrialContext::seeded(42);
    let system = DefenseSystem::paper_default();

    println!("victim voice: F0 = {:.0} Hz", ctx.victim.f0_hz);
    println!(
        "room: {} ({} barrier), user {} m from the VA\n",
        ctx.settings.room.id,
        ctx.settings.room.barrier.material.name(),
        ctx.settings.user_to_va_m
    );

    let legit = ctx.legitimate_trial();
    let attack = ctx.replay_attack_trial();
    println!(
        "legitimate command: VA recorded {:.2} s, wearable {:.2} s (started late)",
        legit.va_recording.duration(),
        legit.wearable_recording.duration()
    );
    println!(
        "replay attack:      VA recorded {:.2} s at {:.0} dB behind the barrier\n",
        attack.va_recording.duration(),
        ctx.settings.attack_spl_db
    );

    println!("{:<30} {:>10} {:>10}", "method", "legitimate", "attack");
    for method in DefenseMethod::all() {
        let s_legit = system.score_with_method(
            method,
            &legit.va_recording,
            &legit.wearable_recording,
            &mut ctx.rng,
        );
        let s_attack = system.score_with_method(
            method,
            &attack.va_recording,
            &attack.wearable_recording,
            &mut ctx.rng,
        );
        println!("{:<30} {s_legit:>10.3} {s_attack:>10.3}", method.label());
    }

    let score = system.score(
        &attack.va_recording,
        &attack.wearable_recording,
        &mut ctx.rng,
    );
    println!(
        "\nfull-system verdict on the attack (threshold {}): {}",
        system.detector.threshold,
        if system.is_attack(score) {
            "ATTACK DETECTED"
        } else {
            "accepted"
        }
    );
}
