//! Deployment walkthrough: calibrate a `VaGuard` from a few of the
//! user's own commands (training-free — no attack data needed), then
//! authorize a mixed stream of commands and attacks.
//!
//! ```sh
//! cargo run --release --example guard_deployment
//! ```

use thrubarrier::attack::AttackKind;
use thrubarrier::defense::{DefenseSystem, VaGuard, Verdict};
use thrubarrier::scenario::TrialContext;

fn main() {
    let mut ctx = TrialContext::seeded(2024);
    let mut guard = VaGuard::new(DefenseSystem::paper_default());

    // Setup phase: the user speaks 8 commands; the guard places its
    // threshold at the 10% quantile of their scores.
    let mut calibration = Vec::new();
    for _ in 0..8 {
        let t = ctx.legitimate_trial();
        calibration.push(guard.system().score(
            &t.va_recording,
            &t.wearable_recording,
            &mut ctx.rng,
        ));
    }
    guard.calibrate_threshold(&calibration, 0.10);
    println!(
        "calibrated threshold from {} enrolment commands: {:.3}\n",
        calibration.len(),
        guard.system().detector.threshold
    );

    // Operation phase: a mixed stream.
    let mut accepted_user = 0;
    let mut rejected_user = 0;
    let mut blocked_attacks = 0;
    let mut missed_attacks = 0;
    for i in 0..12 {
        if i % 3 != 2 {
            let t = ctx.legitimate_trial();
            let v = guard.authorize(&t.va_recording, Some(&t.wearable_recording), &mut ctx.rng);
            if v.accepted() {
                accepted_user += 1;
            } else {
                rejected_user += 1;
            }
        } else {
            let kinds = [
                AttackKind::Replay,
                AttackKind::HiddenVoice,
                AttackKind::Random,
            ];
            let kind = kinds[(i / 3) % 3];
            let t = ctx.attack_trial(kind);
            let v = guard.authorize(&t.va_recording, Some(&t.wearable_recording), &mut ctx.rng);
            match v {
                Verdict::Accept { score } => {
                    missed_attacks += 1;
                    println!("  missed {} (score {score:.3})", kind.name());
                }
                Verdict::RejectAttack { score } => {
                    blocked_attacks += 1;
                    println!("  blocked {} (score {score:.3})", kind.name());
                }
                Verdict::RejectWearableAbsent => unreachable!("wearable present"),
            }
        }
    }
    // A command arriving while the wearable is off is rejected outright.
    let orphan = ctx.legitimate_trial();
    let verdict = guard.authorize(&orphan.va_recording, None, &mut ctx.rng);
    println!("\ncommand with wearable absent -> {verdict:?}");
    println!(
        "\nsummary: {accepted_user} user commands accepted, {rejected_user} falsely rejected, \
         {blocked_attacks} attacks blocked, {missed_attacks} missed"
    );
}
