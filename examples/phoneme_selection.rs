//! Runs the offline barrier-effect-sensitive phoneme selection and
//! prints Table II: the 37 common voice-command phonemes with the 31
//! barrier-sensitive ones marked (the paper rejects the weak fricatives
//! /s/, /z/ and the over-loud back vowels /aa/, /ao/).
//!
//! ```sh
//! cargo run --release --example phoneme_selection
//! ```

use thrubarrier::eval::experiments::table2::{run, SelectionStudyConfig};

fn main() {
    let study = run(&SelectionStudyConfig::default());
    println!("{}", study.render_text());
    // Show the decision evidence for one phoneme of each failure class.
    for sym in ["s", "aa", "er"] {
        let stats = study.selection.stats_for(sym).expect("common phoneme");
        let max_adv = stats.q3_adv[2..31].iter().cloned().fold(f32::MIN, f32::max);
        let min_user = stats.q3_user[2..31]
            .iter()
            .cloned()
            .fold(f32::MAX, f32::min);
        println!(
            "/{sym}/: max Q3 through barrier = {max_adv:.4} (criterion I: < {}), \
             min Q3 without barrier = {min_user:.4} (criterion II: > {})",
            study.selection.alpha, study.selection.alpha
        );
    }
}
