//! Runs a small end-to-end detection evaluation (a miniature of the
//! paper's Fig. 9b): replay attacks vs. legitimate commands, all three
//! methods, AUC and EER.
//!
//! ```sh
//! cargo run --release --example detection_eval
//! ```

use thrubarrier::attack::AttackKind;
use thrubarrier::defense::DefenseMethod;
use thrubarrier::eval::experiments::common::standard_settings;
use thrubarrier::eval::runner::{Runner, RunnerConfig, SelectorChoice};

fn main() {
    let cfg = RunnerConfig {
        seed: 9,
        participants: 6,
        commands_per_user: 10,
        attacks_per_kind: 60,
        attack_kinds: vec![AttackKind::Replay],
        settings: standard_settings(),
        selector: SelectorChoice::Energy,
        ..Default::default()
    };
    println!(
        "scoring {} legitimate + {} attack trials on {} threads...",
        cfg.participants * cfg.commands_per_user,
        cfg.attacks_per_kind,
        cfg.threads
    );
    let outcome = Runner::new(cfg).run();
    println!("\n{:<30} {:>8} {:>8}", "method", "AUC", "EER");
    for method in DefenseMethod::all() {
        let m = outcome.pool(method).metrics_of(AttackKind::Replay);
        println!(
            "{:<30} {:>8.3} {:>7.1}%",
            method.label(),
            m.auc,
            m.eer * 100.0
        );
    }
    println!(
        "\nExpected shape (paper Fig. 9b): the audio baseline is barely\n\
         usable (~0.69 AUC), cross-domain sensing jumps past 0.9, and the\n\
         full system approaches 1.0."
    );
}
