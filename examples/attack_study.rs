//! Reproduces a miniature of the paper's Table I: which commercial VA
//! devices can be woken from behind a barrier, with which attacks?
//!
//! ```sh
//! cargo run --release --example attack_study
//! ```

use thrubarrier::eval::experiments::table1::{run, AttackStudyConfig};

fn main() {
    let cfg = AttackStudyConfig {
        attempts: 10,
        ..Default::default()
    };
    let study = run(&cfg);
    println!("{}", study.render_text());
    println!(
        "Observations to compare with the paper:\n\
         - smart speakers (far-field mics) trigger far more easily than the iPhone;\n\
         - at 75 dB almost every attack succeeds;\n\
         - Siri devices reject random/synthetic voices (speaker verification)."
    );
}
