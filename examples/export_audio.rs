//! Exports a listening set of WAV files: a synthesized command as the
//! user hears it, the same command through the barrier, and a hidden
//! voice version — so you can hear what the defense is up against.
//!
//! ```sh
//! cargo run --release --example export_audio
//! ls thrubarrier_audio/
//! ```

use rand::{rngs::StdRng, SeedableRng};
use thrubarrier::acoustics::loudspeaker::Loudspeaker;
use thrubarrier::acoustics::room::{Room, RoomId};
use thrubarrier::acoustics::scene::AcousticPath;
use thrubarrier::attack::{AttackGenerator, AttackKind};
use thrubarrier::dsp::{wav, AudioBuffer};
use thrubarrier::phoneme::command::CommandBank;
use thrubarrier::phoneme::synth::Synthesizer;
use thrubarrier::phoneme::SpeakerProfile;

fn main() -> std::io::Result<()> {
    let out_dir = std::path::Path::new("thrubarrier_audio");
    std::fs::create_dir_all(out_dir)?;
    let fs = 16_000u32;
    let mut rng = StdRng::seed_from_u64(11);
    let synth = Synthesizer::new(fs);
    let bank = CommandBank::standard();
    let cmd = bank.by_text("unlock the door").expect("command exists");
    let speaker = SpeakerProfile::reference_male();

    // 1. The command as spoken.
    let mut clean = synth.synthesize_command(cmd, &speaker, &mut rng).audio;
    clean.normalize_peak(0.8);
    wav::write_wav(out_dir.join("command_clean.wav"), &clean)?;

    // 2. The same command through the glass window.
    let room = Room::paper_room(RoomId::A);
    let path = AcousticPath::thru_barrier(room, 2.0, Loudspeaker::sound_bar());
    let mut through = AudioBuffer::new(path.transmit(clean.samples(), fs), fs);
    through.normalize_peak(0.8);
    wav::write_wav(out_dir.join("command_through_barrier.wav"), &through)?;

    // 3. A hidden (obfuscated) version of the command.
    let generator = AttackGenerator::new(fs);
    let adversary = SpeakerProfile::reference_female();
    let hidden = generator.generate(AttackKind::HiddenVoice, cmd, &speaker, &adversary, &mut rng);
    let mut hidden_buf = AudioBuffer::new(hidden.samples, fs);
    hidden_buf.normalize_peak(0.8);
    wav::write_wav(out_dir.join("command_hidden_voice.wav"), &hidden_buf)?;

    println!("wrote {} files to {}/:", 3, out_dir.display());
    for name in [
        "command_clean.wav",
        "command_through_barrier.wav",
        "command_hidden_voice.wav",
    ] {
        let meta = std::fs::metadata(out_dir.join(name))?;
        println!("  {name}  ({} bytes)", meta.len());
    }
    println!("\nThe through-barrier file should sound muffled (high frequencies gone);");
    println!("the hidden-voice file noise-like but with the command's rhythm.");
    Ok(())
}
