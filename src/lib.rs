//! # thrubarrier
//!
//! A full reproduction of *"Defending against Thru-barrier Stealthy Voice
//! Attacks via Cross-Domain Sensing on Phoneme Sounds"* (Shi et al., IEEE
//! ICDCS 2022) as a Rust workspace: a training-free defense that protects
//! voice-assistant systems from attackers issuing commands from behind
//! windows and doors, by re-examining recorded commands in the
//! *vibration domain* of a wearable's accelerometer.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`dsp`] — signal-processing primitives (FFT, STFT, MFCC, filters,
//!   aliasing decimators, correlation).
//! * [`nn`] — a from-scratch bidirectional-LSTM substrate for the phoneme
//!   detector.
//! * [`phoneme`] — formant-synthesis speech substrate (TIMIT substitute)
//!   with a 63-phoneme inventory and voice-command bank.
//! * [`acoustics`] — barriers, rooms, propagation, microphones,
//!   loudspeakers and voice-assistant device models.
//! * [`vibration`] — the wearable speaker + accelerometer cross-domain
//!   sensing channel (aliasing, noise injection, low-frequency artifacts).
//! * [`attack`] — random / replay / voice-synthesis / hidden-voice attack
//!   generators and thru-barrier scenarios.
//! * [`defense`] — the paper's contribution: synchronization, sensitive
//!   phoneme selection and segmentation, vibration features, and the
//!   2-D-correlation attack detector.
//! * [`eval`] — metrics (TDR/FDR/ROC/AUC/EER) and the experiment drivers
//!   that regenerate every table and figure in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use thrubarrier::defense::DefenseSystem;
//! use thrubarrier::scenario::TrialContext;
//!
//! # fn main() {
//! // Build the default defense system (Fossil Gen 5 wearable, paper
//! // parameters) and score a legitimate command and an attack.
//! let mut ctx = TrialContext::seeded(42);
//! let system = DefenseSystem::paper_default();
//! let legit = ctx.legitimate_trial();
//! let attack = ctx.replay_attack_trial();
//! let score_legit = system.score(&legit.va_recording, &legit.wearable_recording, &mut ctx.rng);
//! let score_attack = system.score(&attack.va_recording, &attack.wearable_recording, &mut ctx.rng);
//! assert!(score_legit > score_attack);
//! # }
//! ```

pub use thrubarrier_acoustics as acoustics;
pub use thrubarrier_attack as attack;
pub use thrubarrier_defense as defense;
pub use thrubarrier_dsp as dsp;
pub use thrubarrier_eval as eval;
pub use thrubarrier_nn as nn;
pub use thrubarrier_phoneme as phoneme;
pub use thrubarrier_vibration as vibration;

/// Convenience re-export of the end-to-end trial scenario helpers used in
/// examples and integration tests.
pub mod scenario {
    pub use thrubarrier_eval::scenario::*;
}
